"""Chaos acceptance for the distributed fabric, with real worker processes.

The ISSUE acceptance criterion: a distributed sweep whose workers are
killed, partitioned, and frozen mid-run by the seeded chaos layer must
complete with results bit-identical to a fault-free serial run, report
every injected fault as a recovered incident, and leave a checkpoint
cache a follow-up ``--resume`` replays without touching the fabric.

Workers here are genuine ``repro worker`` subprocesses (spawned by the
coordinator), so the crash fault really does ``os._exit`` a live
process and the partition really does sever a TCP connection.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import cache as cache_mod
from repro.harness import chaos
from repro.harness.backends import SerialBackend
from repro.harness.chaos import CHAOS_ENV, ChaosPlan
from repro.harness.distributed import DistributedBackend

from .conftest import small_config

RATES = (0.2, 0.3, 0.4, 0.5, 0.6)


def _configs():
    return [small_config(rate=r, warmup=100, measure=400) for r in RATES]


def _backend(**kwargs) -> DistributedBackend:
    defaults = dict(
        spawn_workers=2,
        chunksize=1,
        heartbeat_s=0.1,
        heartbeat_timeout_s=0.5,
        lease_s=20.0,
        register_grace_s=30.0,
        host_loss_grace_s=5.0,
    )
    defaults.update(kwargs)
    return DistributedBackend(**defaults)


class TestSpawnedFleet:
    def test_clean_spawned_sweep_is_bit_identical_to_serial(
        self, tmp_path, monkeypatch
    ):
        """The zero-setup path (``--backend distributed --workers 2``):
        spawned subprocess workers, shared checkpoint cache, no faults."""
        configs = _configs()
        expected, _ = SerialBackend().run(configs)
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        cache_mod.reset_cache()
        backend = _backend()
        results, report = backend.run(configs)
        assert results == expected
        assert report.ok and not report.incidents
        assert backend.stats["registrations"] >= 2
        assert backend.stats["chunks"] == len(configs)

    def test_acceptance_killed_partitioned_stalled_workers_are_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """One worker process is crashed outright, one chunk's connection
        is severed on arrival, one host freezes past the heartbeat
        timeout — and the sweep still converges bit-identically."""
        configs = _configs()
        fingerprints = [config.fingerprint() for config in configs]
        expected, _ = SerialBackend().run(configs)  # fault-free baseline

        # Choose a seed, purely from the plan, that injects exactly one
        # worker crash (so one of the two spawned processes survives)
        # plus at least one disconnect and one heartbeat stall.
        rates = dict(
            crash_rate=0.3, disconnect_rate=0.3, stall_heartbeat_rate=0.3
        )
        for seed in range(2000):
            probe = ChaosPlan(seed=seed, **rates)
            point_faults = [probe.fault_for(fp) for fp in fingerprints]
            net_faults = [probe.network_fault_for(fp) for fp in fingerprints]
            if (
                point_faults.count("crash") == 1
                and net_faults.count("disconnect") >= 1
                and net_faults.count("stall-heartbeat") >= 1
            ):
                break
        else:  # pragma: no cover - seed search is deterministic
            pytest.fail("no suitable chaos seed in range")
        plan = ChaosPlan(
            seed=seed, **rates,
            # Freeze longer than the coordinator's heartbeat timeout so
            # the stall is *observable* as a host loss.
            stall_s=1.5,
            state_dir=str(tmp_path / "chaos"), main_pid=os.getpid(),
        )
        path = plan.write(tmp_path / "plan.json")
        monkeypatch.setenv(CHAOS_ENV, str(path))
        chaos.reset_plan()
        # Worker subprocesses inherit both variables: the whole fleet
        # shares one chaos plan and one checkpoint cache.
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        cache_mod.reset_cache()

        backend = _backend()
        results, report = backend.run(configs)

        assert results == expected  # bit-identical despite the carnage
        assert report.ok  # every incident recovered
        assert any(i.outcome == "host-lost" for i in report.incidents)
        # Crash, partition, and stall each cost (at least) one host.
        assert backend.stats["host_losses"] >= 3
        fired = plan.fired()
        assert len([m for m in fired if m.startswith("crash-")]) == 1
        assert len([m for m in fired if m.startswith("disconnect-")]) >= 1
        assert len([m for m in fired if m.startswith("stall-heartbeat-")]) >= 1

        # Resume: the checkpoint cache answers everything; the fabric
        # never even starts (zero chunks survive the partition).
        resumed = DistributedBackend(register_grace_s=0.1)
        again, report2 = resumed.run(configs)
        assert again == expected
        assert report2.ok and not report2.incidents
        assert resumed.stats["chunks"] == 0
