"""repro — reproduction of "Dynamic Voltage Scaling with Links for Power
Optimization of Interconnection Networks" (Shang, Peh & Jha, HPCA 2003).

The package provides, from scratch:

* the paper's contribution — DVS links and the history-based DVS policy
  (:mod:`repro.core`);
* the substrate it runs on — a flit-level k-ary n-cube network simulator
  with virtual-channel routers and credit flow control
  (:mod:`repro.network`);
* the paper's two-level self-similar workload model plus classic reference
  workloads (:mod:`repro.traffic`);
* power accounting and the router power profile (:mod:`repro.power`);
* metrics (:mod:`repro.metrics`) and the per-figure experiment harness
  (:mod:`repro.harness`);
* a pluggable instrumentation bus — observers for latency, power, series,
  probes and event traces attach to the cycle kernel without touching it
  (:mod:`repro.instrument`; see ``docs/architecture.md``).

Quick start::

    from repro import SimulationConfig, Simulator

    result = Simulator(SimulationConfig()).run()
    print(result.latency.mean, result.power.savings_factor)
"""

from .config import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
    paper_baseline_config,
)
from .core import (
    TABLE1_DEFAULT,
    TABLE2_SETTINGS,
    AlwaysMaxPolicy,
    ChannelPhase,
    ControllerHardwareModel,
    DVSAction,
    DVSChannel,
    DVSPolicy,
    HistoryDVSPolicy,
    LinkPowerModel,
    PortDVSController,
    RegulatorModel,
    StaticLevelPolicy,
    ThresholdSet,
    TransitionTiming,
    VFOperatingPoint,
    VFTable,
    transition_energy,
)
from .errors import (
    ConfigError,
    ExperimentError,
    FlowControlError,
    LinkStateError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
# network must initialize before instrument: the observer implementations
# import metrics, which reaches back into network.flowcontrol.
from .network import SimulationEngine, SimulationResult, Simulator, Topology

# isort: split
from .instrument import InstrumentBus, Observer, TraceRecorder, TransitionEvent
from .power import PowerAccountant, PowerReport, RouterPowerProfile

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configs
    "NetworkConfig",
    "LinkConfig",
    "DVSControlConfig",
    "WorkloadConfig",
    "SimulationConfig",
    "paper_baseline_config",
    # core
    "VFOperatingPoint",
    "VFTable",
    "LinkPowerModel",
    "RegulatorModel",
    "transition_energy",
    "ChannelPhase",
    "DVSChannel",
    "TransitionTiming",
    "DVSAction",
    "DVSPolicy",
    "HistoryDVSPolicy",
    "AlwaysMaxPolicy",
    "StaticLevelPolicy",
    "PortDVSController",
    "ThresholdSet",
    "TABLE1_DEFAULT",
    "TABLE2_SETTINGS",
    "ControllerHardwareModel",
    # network
    "Topology",
    "SimulationEngine",
    "Simulator",
    "SimulationResult",
    # instrumentation
    "InstrumentBus",
    "Observer",
    "TransitionEvent",
    "TraceRecorder",
    # power
    "PowerAccountant",
    "PowerReport",
    "RouterPowerProfile",
    # errors
    "ReproError",
    "ConfigError",
    "TopologyError",
    "RoutingError",
    "SimulationError",
    "FlowControlError",
    "LinkStateError",
    "WorkloadError",
    "ExperimentError",
]
