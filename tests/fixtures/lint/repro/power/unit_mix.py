"""Fixture: R10 (unit/dimension mismatch in energy arithmetic).

The path mimics the real power package so the scoped pass fires. The
``*_fj`` / ``*_mw`` suffixes declare the dimensions; adding an energy to
a power is the class of bookkeeping bug the integer-femtojoule ledgers
made easy to write and impossible to catch numerically.
"""


def total_cost(energy_fj: int, leak_power_mw: float) -> float:
    return energy_fj + leak_power_mw  # one R10 violation


def total_energy(link_fj: int, static_fj: int) -> int:
    return link_fj + static_fj  # clean: same dimension


def mixed_on_purpose(span_cycles: int, budget_fj: int) -> float:
    # Suppressed R10: must NOT be reported.
    return span_cycles + budget_fj  # repro-lint: ignore[R10]
