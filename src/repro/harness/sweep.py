"""Injection-rate sweeps and derived summary numbers.

The paper's latency/throughput figures are sweeps of offered load; this
module runs them, pairs DVS against baselines on identical workload seeds,
and computes the paper's summary statistics (zero-load latency increase,
average pre-saturation latency increase, throughput delta, power savings).

Sweeps execute through an :class:`~repro.harness.backends.ExecutionBackend`,
which memoizes per-config results on disk (:mod:`repro.harness.cache`):
re-running a sweep only simulates points whose exact config has never been
run under the current code epoch. Results are bit-identical either way.

Failure semantics: by default a point that fails after retries aborts the
sweep with a structured :class:`~repro.errors.SweepExecutionError`. Pass a
:class:`~repro.harness.resilience.FailureReport` via ``failures=`` to
degrade gracefully instead — failed points are dropped from the returned
lists (each :class:`SweepPoint` carries its ``target_rate``, so gaps are
attributable) and the report says exactly what was lost and what was
recovered. ``resume=True`` asserts the sweep cache is enabled, so a
previously interrupted campaign replays its checkpointed points from disk
and recomputes only the missing ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..config import DVSControlConfig, SimulationConfig
from ..errors import ExperimentError
from ..metrics.throughput import saturation_point
from ..network.simulator import SimulationResult
from .backends import ExecutionBackend, default_backend
from .cache import SweepCache, get_cache
from .resilience import FailureReport
from .runner import run_simulation


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One offered-load point of a sweep."""

    target_rate: float
    offered_rate: float
    accepted_rate: float
    mean_latency: float
    median_latency: float
    normalized_power: float
    savings_factor: float
    transition_count: int

    @classmethod
    def from_result(cls, target_rate: float, result: "SimulationResult") -> "SweepPoint":
        return cls(
            target_rate=target_rate,
            offered_rate=result.offered_rate,
            accepted_rate=result.accepted_rate,
            mean_latency=result.latency.mean,
            median_latency=result.latency.median,
            normalized_power=result.power.normalized,
            savings_factor=result.power.savings_factor,
            transition_count=result.power.transition_count,
        )


def require_resumable_cache() -> SweepCache:
    """The active sweep cache, or a clear error when resume is impossible.

    Resuming replays checkpointed points from the cache journal; with the
    cache disabled there is nothing to resume from, so failing loudly
    beats silently recomputing a whole campaign.
    """
    cache = get_cache()
    if cache is None:
        raise ExperimentError(
            "resume requires the sweep result cache; remove --no-cache / "
            "unset REPRO_CACHE=off"
        )
    return cache


def resume_preview(configs: Iterable[SimulationConfig]) -> tuple[int, int]:
    """``(already_checkpointed, total)`` for a campaign about to (re)run.

    A cheap existence probe (no integrity verification — a quarantined
    entry will still be recomputed when actually loaded), meant for
    upfront "resuming 59/100 points" reporting.
    """
    cache = require_resumable_cache()
    total = 0
    checkpointed = 0
    for config in configs:
        total += 1
        if cache.contains(config):
            checkpointed += 1
    return checkpointed, total


def _sweep_results(
    backend: ExecutionBackend,
    configs: list[SimulationConfig],
    failures: FailureReport | None,
) -> list[SimulationResult | None]:
    """Strict results when *failures* is None, else partial + report merge."""
    if failures is None:
        return list(backend.map_configs(configs))
    results, report = backend.run(configs)
    failures.merge(report)
    return results


def rate_sweep(
    base_config: SimulationConfig,
    rates: Sequence[float],
    *,
    backend: ExecutionBackend | None = None,
    resume: bool = False,
    failures: FailureReport | None = None,
) -> list[SweepPoint]:
    """Run *base_config* at each offered rate in *rates*.

    Execution goes through *backend*
    (:func:`~repro.harness.backends.default_backend` when omitted, which
    honors ``REPRO_PROCESSES``); results are identical regardless of the
    backend chosen. ``resume=True`` requires the sweep cache so an
    interrupted campaign replays its completed points; passing a
    :class:`FailureReport` as *failures* degrades failed points to gaps
    in the returned list instead of raising.
    """
    if backend is None:
        backend = default_backend()
    if resume:
        require_resumable_cache()
    rates = list(rates)
    results = _sweep_results(
        backend, [base_config.with_rate(rate) for rate in rates], failures
    )
    return [
        SweepPoint.from_result(rate, result)
        for rate, result in zip(rates, results, strict=False)
        if result is not None
    ]


def named_sweeps(
    configs: dict[str, SimulationConfig],
    rates: Sequence[float],
    *,
    backend: ExecutionBackend | None = None,
    resume: bool = False,
    failures: FailureReport | None = None,
) -> dict[str, list[SweepPoint]]:
    """Sweep several named base configs over the same rates as ONE batch.

    The whole campaign — ``len(configs) * len(rates)`` points — is
    submitted to *backend* at once, so a process pool parallelizes across
    the named variants and the incremental cache checkpoints cover the
    campaign as a unit. :func:`compare_policies` and the multi-variant
    figure experiments are thin wrappers over this.
    """
    if not configs:
        raise ExperimentError("need at least one named config to sweep")
    if backend is None:
        backend = default_backend()
    if resume:
        require_resumable_cache()
    rates = list(rates)
    results = _sweep_results(
        backend,
        [config.with_rate(rate) for config in configs.values() for rate in rates],
        failures,
    )
    sweeps: dict[str, list[SweepPoint]] = {}
    index = 0
    for name in configs:
        points: list[SweepPoint] = []
        for rate in rates:
            result = results[index]
            index += 1
            if result is not None:
                points.append(SweepPoint.from_result(rate, result))
        sweeps[name] = points
    return sweeps


def compare_policies(
    base_config: SimulationConfig,
    rates: Sequence[float],
    policies: dict[str, DVSControlConfig],
    *,
    backend: ExecutionBackend | None = None,
    resume: bool = False,
    failures: FailureReport | None = None,
) -> dict[str, list[SweepPoint]]:
    """Sweep the same rates (same workload seeds) under several policies.

    All policy sweeps are submitted to *backend* as one flat batch, so a
    process pool sees ``len(policies) * len(rates)`` independent work
    items rather than one batch per policy. ``resume``/``failures`` as in
    :func:`rate_sweep`.
    """
    if not policies:
        raise ExperimentError("need at least one policy to compare")
    return named_sweeps(
        {name: base_config.with_dvs(dvs) for name, dvs in policies.items()},
        rates,
        backend=backend,
        resume=resume,
        failures=failures,
    )


def zero_load_latency(base_config: SimulationConfig, rate: float = 0.05) -> float:
    """Mean latency at a near-zero offered load (paper's reference point)."""
    result = run_simulation(base_config.with_rate(rate))
    if result.latency.count == 0:
        raise ExperimentError("no packets completed at the zero-load rate")
    return result.latency.mean


@dataclass(frozen=True, slots=True)
class SweepComparison:
    """Paper-style summary of a DVS sweep against a baseline sweep."""

    zero_load_increase: float
    average_presaturation_increase: float
    throughput_change: float
    max_savings: float
    average_savings: float

    def describe(self) -> str:
        return (
            f"zero-load latency {self.zero_load_increase:+.1%}, "
            f"pre-saturation latency {self.average_presaturation_increase:+.1%}, "
            f"throughput {self.throughput_change:+.1%}, "
            f"power savings up to {self.max_savings:.1f}X "
            f"({self.average_savings:.1f}X average)"
        )


def summarize_comparison(
    baseline: list[SweepPoint], dvs: list[SweepPoint]
) -> SweepComparison:
    """Compute the paper's headline numbers from paired sweeps.

    Pre-saturation points are those where the *baseline* latency is below
    twice its zero-load (first-point) latency, following the paper's
    saturation rule; savings statistics use the same points.
    """
    if len(baseline) != len(dvs) or not baseline:
        raise ExperimentError("sweeps must be non-empty and aligned")
    zero_base = baseline[0].mean_latency
    zero_dvs = dvs[0].mean_latency
    if not zero_base or math.isnan(zero_base) or math.isnan(zero_dvs):
        raise ExperimentError("zero-load points did not produce latencies")

    saturated_at = saturation_point(
        [p.offered_rate for p in baseline],
        [p.mean_latency for p in baseline],
        zero_base,
    )
    pre = slice(0, saturated_at if saturated_at > 0 else len(baseline))
    base_pre = baseline[pre]
    dvs_pre = dvs[pre]
    increases = [
        d.mean_latency / b.mean_latency - 1.0
        for b, d in zip(base_pre, dvs_pre, strict=False)
        if not math.isnan(b.mean_latency) and not math.isnan(d.mean_latency)
    ]
    if not increases:
        raise ExperimentError("no pre-saturation points with latencies")
    savings = [p.savings_factor for p in dvs_pre]

    return SweepComparison(
        zero_load_increase=zero_dvs / zero_base - 1.0,
        average_presaturation_increase=sum(increases) / len(increases),
        throughput_change=(
            max(p.accepted_rate for p in dvs)
            / max(p.accepted_rate for p in baseline)
            - 1.0
        ),
        max_savings=max(savings),
        average_savings=sum(savings) / len(savings),
    )
