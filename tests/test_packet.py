"""Tests for packets and flits."""

import pytest

from repro.errors import ConfigError
from repro.network.packet import Packet


class TestPacket:
    def test_construction(self):
        packet = Packet(src=0, dst=5, size_flits=5, created_cycle=100)
        assert packet.src == 0
        assert packet.dst == 5
        assert packet.ejected_cycle == -1
        assert packet.vc_class == 0
        assert packet.last_dim == -1

    def test_ids_monotonic(self):
        a = Packet(0, 1, 5, 0)
        b = Packet(0, 1, 5, 0)
        assert b.packet_id > a.packet_id

    def test_latency(self):
        packet = Packet(0, 1, 5, created_cycle=100)
        packet.ejected_cycle = 175
        assert packet.latency == 75

    def test_latency_before_ejection_raises(self):
        packet = Packet(0, 1, 5, 0)
        with pytest.raises(ConfigError):
            _ = packet.latency

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigError):
            Packet(3, 3, 5, 0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            Packet(0, 1, 0, 0)


class TestFlits:
    def test_paper_packet_shape(self):
        """Five flits: one head leading four body flits, last one the tail."""
        packet = Packet(0, 1, 5, 0)
        flits = packet.make_flits()
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert all(not f.is_head for f in flits[1:])
        assert flits[-1].is_tail
        assert all(not f.is_tail for f in flits[:-1])
        assert [f.index for f in flits] == [0, 1, 2, 3, 4]

    def test_single_flit_packet_is_head_and_tail(self):
        packet = Packet(0, 1, 1, 0)
        (flit,) = packet.make_flits()
        assert flit.is_head and flit.is_tail

    def test_flits_reference_packet(self):
        packet = Packet(0, 1, 3, 0)
        for flit in packet.make_flits():
            assert flit.packet is packet

    def test_repr(self):
        packet = Packet(0, 1, 2, 0)
        head, tail = packet.make_flits()
        assert "H" in repr(head)
        assert "T" in repr(tail)
