"""Fixture: R11 (worker mutates process-global state).

The path mimics the real harness package. ``run_point`` is a worker
entry point by contract; the append below makes its result depend on
what else ran in the same pool worker — the cross-talk the serial vs
process-pool bit-identity guarantee forbids.
"""

_COMPLETED = []


def run_point(config):
    result = config * 2
    _COMPLETED.append(result)  # one R11 violation
    return result


def run_chunk(configs):
    out = []
    for config in configs:
        # Suppressed R11: must NOT be reported.
        _COMPLETED.append(config)  # repro-lint: ignore[R11]
        out.append(config)
    return out
