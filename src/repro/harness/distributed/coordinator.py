"""The distributed sweep coordinator: a fault-tolerant ExecutionBackend.

:class:`DistributedBackend` is the third execution backend (after serial
and the process pool): it shards the flat config list into the same
:class:`~repro.harness.backends._Chunk` units the pool uses and
dispatches them to remote workers over asyncio TCP. Everything the
local backends guarantee still holds — results in input order, per-point
:class:`~repro.harness.resilience.PointFailure` records, immediate
per-chunk cache checkpointing (so ``--resume`` works across a killed
campaign) — plus fabric-level fault tolerance:

* **Leases.** Every dispatched chunk carries a deadline. A chunk whose
  lease expires (slow host, stalled network) is *stolen*: re-queued for
  the next idle worker, recorded as a recovered ``lease-expired``
  incident. The original worker keeps running; if its late result
  arrives after a steal settled the chunk it is simply ignored
  (results are deterministic, so either copy is bit-identical).
* **Heartbeats.** Workers announce liveness on a side channel. A worker
  that misses heartbeats past ``heartbeat_timeout_s`` — killed,
  partitioned, frozen — is declared lost: its in-flight chunk re-queues
  as a recovered ``host-lost`` incident and its connection is dropped.
  A lost worker that was merely frozen simply re-registers and keeps
  serving.
* **Degrade to local.** When the last worker is gone (and no spawned
  worker process can come back), the coordinator stops waiting and runs
  every unsettled chunk in-process through the unchanged resilience
  path — a sweep never hangs or fails because the fleet died; it only
  gets slower, and says so via a recovered ``degraded-local`` incident.

No fabric fault can change sweep *results*: workers compute
deterministic functions of their configs, duplicated work is settled
first-wins, and lost work is recomputed. The chaos acceptance tests
assert bit-identity against the serial backend under worker kills,
partitions, stalls, and corrupted frames.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

from ...config import SimulationConfig
from ...errors import DistributedError, ExperimentError
from ...network.simulator import SimulationResult
from ..backends import ExecutionBackend, _Chunk
from ..cache import SweepCache, get_cache
from ..resilience import (
    DEFAULT_RETRY_POLICY,
    FailureReport,
    PointFailure,
    RetryPolicy,
)
from .protocol import read_message, write_message
from .worker import run_worker_chunk

#: One worker outcome: the run_chunk per-point shape.
_Outcome = tuple[Optional[SimulationResult], Optional[PointFailure]]


@dataclass
class _WorkerState:
    """One connected worker, as the coordinator sees it."""

    worker_id: str
    writer: asyncio.StreamWriter
    last_seen: float
    #: The chunk currently leased to this worker, if any.
    chunk_id: Optional[int] = None


@dataclass
class _FabricRun:
    """All mutable state for one :meth:`DistributedBackend.run` call."""

    chunks: list[_Chunk]
    results: list[Optional[SimulationResult]]
    report: FailureReport
    cache: Optional[SweepCache]
    pending: deque[int]
    settled: list[bool]
    unsettled: int
    workers: dict[str, _WorkerState] = field(default_factory=dict)
    #: chunk id -> lease deadline (event-loop clock).
    leases: dict[int, float] = field(default_factory=dict)
    ever_registered: bool = False
    workerless_since: float = 0.0
    send_tasks: set["asyncio.Task[None]"] = field(default_factory=set)
    handler_tasks: set["asyncio.Task[None]"] = field(default_factory=set)


class DistributedBackend(ExecutionBackend):
    """Fans a sweep out to remote ``repro worker`` processes over TCP.

    ``spawn_workers=N`` launches N loopback worker subprocesses for the
    duration of the run (the zero-setup path behind ``repro sweep
    --backend distributed --workers N``); with ``spawn_workers=0`` the
    coordinator only serves externally started workers, which learn the
    bound port from *on_listening* (tests) or the operator (real use).

    ``chunksize`` defaults to 1: the finest work-stealing granularity,
    the right default when each point is seconds of simulation and the
    fabric must reassign work at host death. Raise it when per-point
    cost is tiny relative to a network round-trip.
    """

    def __init__(
        self,
        *,
        spawn_workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        chunksize: int = 1,
        retry: Optional[RetryPolicy] = None,
        heartbeat_s: float = 0.25,
        heartbeat_timeout_s: float = 1.5,
        lease_s: float = 30.0,
        register_grace_s: float = 10.0,
        host_loss_grace_s: float = 2.0,
        progress: Optional[Callable[[str], None]] = None,
        on_listening: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        if spawn_workers < 0:
            raise ExperimentError("spawn_workers cannot be negative")
        if chunksize < 1:
            raise ExperimentError("chunksize must be positive")
        if heartbeat_s <= 0:
            raise ExperimentError("heartbeat_s must be positive")
        if heartbeat_timeout_s <= heartbeat_s:
            raise ExperimentError(
                "heartbeat_timeout_s must exceed heartbeat_s, or every "
                "worker is declared lost between two heartbeats"
            )
        if lease_s <= 0:
            raise ExperimentError("lease_s must be positive")
        if register_grace_s < 0 or host_loss_grace_s < 0:
            raise ExperimentError("grace periods cannot be negative")
        self.spawn_workers = spawn_workers
        self.host = host
        self.port = port
        self.chunksize = chunksize
        self.retry = DEFAULT_RETRY_POLICY if retry is None else retry
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.lease_s = lease_s
        self.register_grace_s = register_grace_s
        self.host_loss_grace_s = host_loss_grace_s
        self.progress = progress
        self.on_listening = on_listening
        #: The actually bound port (useful with ``port=0``).
        self.bound_port: Optional[int] = None
        self._tick_s = max(
            0.01, min(0.25, heartbeat_timeout_s / 8, lease_s / 8)
        )
        self.stats: dict[str, int] = {
            "chunks": 0,
            "dispatches": 0,
            "registrations": 0,
            "host_losses": 0,
            "steals": 0,
            "duplicate_results": 0,
            "degraded_points": 0,
        }

    # -- the ExecutionBackend contract ------------------------------------

    def run(
        self, configs: Iterable[SimulationConfig]
    ) -> tuple[list[Optional[SimulationResult]], FailureReport]:
        configs = list(configs)
        report = FailureReport()
        if not configs:
            return [], report
        cache = get_cache()
        if cache is None:
            results: list[Optional[SimulationResult]] = [None] * len(configs)
            miss_indices = list(range(len(configs)))
            miss_configs = configs
        else:
            results, miss_indices, miss_configs = cache.partition(configs)
        if not miss_configs:
            return results, report
        chunks = list(self._chunks(miss_configs, miss_indices))
        self.stats["chunks"] += len(chunks)
        run = _FabricRun(
            chunks=chunks,
            results=results,
            report=report,
            cache=cache,
            pending=deque(range(len(chunks))),
            settled=[False] * len(chunks),
            unsettled=len(chunks),
        )
        procs: list["subprocess.Popen[bytes]"] = []
        try:
            asyncio.run(self._serve(run, procs))
        finally:
            self._reap(procs)
        if run.unsettled:
            self._degrade_locally(run)
        return results, report

    def _chunks(
        self, configs: list[SimulationConfig], indices: list[int]
    ) -> Iterator[_Chunk]:
        for start in range(0, len(configs), self.chunksize):
            stop = start + self.chunksize
            yield _Chunk(configs[start:stop], indices[start:stop])

    # -- the asyncio fabric ------------------------------------------------

    async def _serve(
        self, run: _FabricRun, procs: list["subprocess.Popen[bytes]"]
    ) -> None:
        """Serve workers until every chunk settles or the fleet is gone."""
        loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            partial(self._handle, run), self.host, self.port
        )
        host, port = server.sockets[0].getsockname()[:2]
        self.bound_port = port
        self._log(
            f"coordinator listening on {host}:{port}, "
            f"{len(run.chunks)} chunks to place"
        )
        try:
            if self.on_listening is not None:
                self.on_listening(host, port)
            procs.extend(self._spawn(port))
            start = loop.time()
            run.workerless_since = start
            while run.unsettled:
                now = loop.time()
                self._reap_losses(run, now)
                self._dispatch(run, loop)
                if (
                    run.unsettled
                    and not run.workers
                    and self._should_degrade(run, procs, now, start)
                ):
                    break
                await asyncio.sleep(self._tick_s)
            await self._shutdown_workers(run)
        finally:
            # Closed worker connections EOF their handlers; give them a
            # beat to unwind so loop teardown has nothing to cancel.
            if run.handler_tasks:
                await asyncio.wait(list(run.handler_tasks), timeout=1.0)
            server.close()
            try:
                await server.wait_closed()
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                pass

    async def _handle(
        self,
        run: _FabricRun,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One worker connection: register, then heartbeats and results."""
        loop = asyncio.get_running_loop()
        worker_id: Optional[str] = None
        state: Optional[_WorkerState] = None
        task = asyncio.current_task()
        if task is not None:
            run.handler_tasks.add(task)
        try:
            message = await read_message(reader)
            if message.get("type") != "register" or "worker_id" not in message:
                raise DistributedError(
                    "first message on a worker connection must be register"
                )
            worker_id = str(message["worker_id"])
            if worker_id in run.workers:
                # A rejoining worker reusing its id: the stale connection
                # is dead weight, drop it (re-queueing any leased chunk).
                self._lose_worker(
                    run, worker_id, "replaced by a new registration",
                    loop.time(),
                )
            state = _WorkerState(
                worker_id=worker_id, writer=writer, last_seen=loop.time()
            )
            run.workers[worker_id] = state
            run.ever_registered = True
            self.stats["registrations"] += 1
            self._log(
                f"worker {worker_id} registered "
                f"({len(run.workers)} connected)"
            )
            while True:
                message = await read_message(reader)
                kind = message.get("type")
                if kind == "heartbeat":
                    state.last_seen = loop.time()
                elif kind == "result":
                    state.last_seen = loop.time()
                    self._settle(run, state, message)
                else:
                    raise DistributedError(
                        f"coordinator received unexpected message "
                        f"type {kind!r}"
                    )
        except (KeyboardInterrupt, SystemExit):
            raise
        except asyncio.CancelledError:
            # Loop teardown after the sweep settled: end quietly instead
            # of letting the streams machinery log a spurious traceback.
            return
        except (
            ConnectionError,
            OSError,
            EOFError,
            asyncio.IncompleteReadError,
            DistributedError,
        ) as exc:
            # Identity check: _lose_worker may already have evicted this
            # connection (heartbeat miss closes the writer, which lands
            # here) or a rejoin may have replaced it.
            if worker_id is not None and run.workers.get(worker_id) is state:
                self._lose_worker(run, worker_id, repr(exc), loop.time())
        finally:
            if task is not None:
                run.handler_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                pass

    def _dispatch(
        self, run: _FabricRun, loop: asyncio.AbstractEventLoop
    ) -> None:
        """Lease pending chunks to idle workers."""
        while run.pending:
            chunk_id = run.pending[0]
            if run.settled[chunk_id]:
                # A stolen copy whose original already settled.
                run.pending.popleft()
                continue
            worker = next(
                (w for w in run.workers.values() if w.chunk_id is None), None
            )
            if worker is None:
                return
            run.pending.popleft()
            worker.chunk_id = chunk_id
            run.leases[chunk_id] = loop.time() + self.lease_s
            self.stats["dispatches"] += 1
            task = loop.create_task(self._send_chunk(run, worker, chunk_id))
            run.send_tasks.add(task)
            task.add_done_callback(run.send_tasks.discard)

    async def _send_chunk(
        self, run: _FabricRun, state: _WorkerState, chunk_id: int
    ) -> None:
        chunk = run.chunks[chunk_id]
        try:
            await write_message(
                state.writer,
                {
                    "type": "chunk",
                    "chunk_id": chunk_id,
                    "configs": chunk.configs,
                    "retry": self.retry,
                },
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if run.workers.get(state.worker_id) is state:
                self._lose_worker(
                    run,
                    state.worker_id,
                    f"chunk dispatch failed: {exc!r}",
                    asyncio.get_running_loop().time(),
                )

    def _settle(
        self, run: _FabricRun, state: _WorkerState, message: dict
    ) -> None:
        """Fold one result message in; duplicates are ignored, first wins."""
        chunk_id = message.get("chunk_id")
        if not isinstance(chunk_id, int) or not 0 <= chunk_id < len(run.chunks):
            raise DistributedError(f"result for unknown chunk {chunk_id!r}")
        chunk = run.chunks[chunk_id]
        outcomes = message.get("outcomes")
        if not isinstance(outcomes, list) or len(outcomes) != len(chunk.configs):
            raise DistributedError(
                f"worker {state.worker_id} returned "
                f"{len(outcomes) if isinstance(outcomes, list) else '?'} "
                f"outcomes for chunk {chunk_id} of {len(chunk.configs)} configs"
            )
        if state.chunk_id == chunk_id:
            state.chunk_id = None
        run.leases.pop(chunk_id, None)
        if run.settled[chunk_id]:
            # The chunk was stolen and the thief won; deterministic
            # results make either copy equally correct.
            self.stats["duplicate_results"] += 1
            return
        run.settled[chunk_id] = True
        run.unsettled -= 1
        self._fold(chunk, outcomes, run.results, run.report, run.cache)

    def _fold(
        self,
        chunk: _Chunk,
        outcomes: list[_Outcome],
        results: list[Optional[SimulationResult]],
        report: FailureReport,
        cache: Optional[SweepCache],
    ) -> None:
        """Checkpoint one settled chunk into results, report, and cache."""
        for (result, failure), config, index in zip(
            outcomes, chunk.configs, chunk.indices, strict=False
        ):
            if failure is not None:
                report.record(failure)
            if result is not None and cache is not None:
                cache.store(config, result)
            results[index] = result

    # -- fault handling ----------------------------------------------------

    def _reap_losses(self, run: _FabricRun, now: float) -> None:
        """Declare heartbeat-missing workers lost, steal expired leases."""
        for worker_id, state in list(run.workers.items()):
            silence = now - state.last_seen
            if silence > self.heartbeat_timeout_s:
                self._lose_worker(
                    run, worker_id,
                    f"missed heartbeats for {silence:.2f}s", now,
                )
        for chunk_id, deadline in list(run.leases.items()):
            if now <= deadline:
                continue
            run.leases.pop(chunk_id)
            if run.settled[chunk_id]:
                continue
            self.stats["steals"] += 1
            self._requeue(
                run, chunk_id,
                outcome="lease-expired",
                error=(
                    f"lease on chunk {chunk_id} expired after "
                    f"{self.lease_s:g}s; chunk re-dispatched"
                ),
            )

    def _lose_worker(
        self, run: _FabricRun, worker_id: str, reason: str, now: float
    ) -> None:
        """Evict one worker, re-queueing whatever chunk it was leased."""
        state = run.workers.pop(worker_id, None)
        if state is None:
            return
        self.stats["host_losses"] += 1
        self._log(f"worker {worker_id} lost: {reason}")
        chunk_id = state.chunk_id
        if chunk_id is not None:
            run.leases.pop(chunk_id, None)
            if not run.settled[chunk_id]:
                self._requeue(
                    run, chunk_id,
                    outcome="host-lost",
                    error=(
                        f"worker {worker_id} lost ({reason}); "
                        "chunk re-dispatched"
                    ),
                )
        state.writer.close()
        if not run.workers:
            run.workerless_since = now

    def _requeue(
        self, run: _FabricRun, chunk_id: int, *, outcome: str, error: str
    ) -> None:
        """Put a chunk back on the queue, recording a recovered incident."""
        chunk = run.chunks[chunk_id]
        run.pending.append(chunk_id)
        run.report.record(
            PointFailure(
                fingerprint=chunk.configs[0].fingerprint(),
                outcome=outcome,
                attempts=1,
                error=error,
                recovered=True,
                points=len(chunk.configs),
            )
        )

    def _should_degrade(
        self,
        run: _FabricRun,
        procs: list["subprocess.Popen[bytes]"],
        now: float,
        start: float,
    ) -> bool:
        """True when no worker is left and none can plausibly come back.

        Called only while ``run.workers`` is empty. Spawned worker
        processes still alive get ``register_grace_s`` to (re)register;
        external workers get ``host_loss_grace_s`` to rejoin after a
        loss (and ``register_grace_s`` to appear at all).
        """
        spawned_alive = any(proc.poll() is None for proc in procs)
        if spawned_alive:
            since = start if not run.ever_registered else run.workerless_since
            return now - since > self.register_grace_s
        if procs and not run.ever_registered:
            # Every spawned worker died before registering; nothing to
            # wait for.
            return True
        if not run.ever_registered:
            return now - start > self.register_grace_s
        return now - run.workerless_since > self.host_loss_grace_s

    def _degrade_locally(self, run: _FabricRun) -> None:
        """Finish every unsettled chunk in-process: slower, never stuck."""
        remaining = [
            chunk_id
            for chunk_id in range(len(run.chunks))
            if not run.settled[chunk_id]
        ]
        points = sum(len(run.chunks[c].configs) for c in remaining)
        self.stats["degraded_points"] += points
        self._log(
            f"no live workers remain; degrading {points} points over "
            f"{len(remaining)} chunks to local execution"
        )
        run.report.record(
            PointFailure(
                fingerprint=run.chunks[remaining[0]].configs[0].fingerprint(),
                outcome="degraded-local",
                attempts=1,
                error=(
                    "every worker was lost; remaining chunks ran locally "
                    "through the resilience path"
                ),
                recovered=True,
                points=points,
            )
        )
        for chunk_id in remaining:
            chunk = run.chunks[chunk_id]
            outcomes = run_worker_chunk(chunk.configs, self.retry)
            run.settled[chunk_id] = True
            run.unsettled -= 1
            self._fold(chunk, outcomes, run.results, run.report, run.cache)

    # -- worker lifecycle --------------------------------------------------

    async def _shutdown_workers(self, run: _FabricRun) -> None:
        """Best-effort shutdown notices so workers exit instead of rejoin."""
        for state in list(run.workers.values()):
            try:
                await write_message(state.writer, {"type": "shutdown"})
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                pass
            state.writer.close()
        run.workers.clear()

    def _spawn(self, port: int) -> list["subprocess.Popen[bytes]"]:
        """Launch the loopback worker fleet (``spawn_workers`` strong)."""
        procs: list["subprocess.Popen[bytes]"] = []
        if not self.spawn_workers:
            return procs
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + os.pathsep + existing if existing else src_root
            )
        for index in range(self.spawn_workers):
            command = [
                sys.executable, "-m", "repro", "worker",
                "--host", self.host,
                "--port", str(port),
                "--worker-id", f"spawned-{index}",
                "--heartbeat", str(self.heartbeat_s),
            ]
            if self.progress is None:
                command.append("--quiet")
            procs.append(
                subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
            )
        self._log(f"spawned {len(procs)} loopback workers")
        return procs

    @staticmethod
    def _reap(procs: list["subprocess.Popen[bytes]"]) -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    pass

    def _log(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def __repr__(self) -> str:
        return (
            f"DistributedBackend(spawn_workers={self.spawn_workers}, "
            f"chunksize={self.chunksize})"
        )
