"""Traffic source interface and factory.

A :class:`TrafficSource` is polled once per router cycle by the simulator:
:meth:`~TrafficSource.injections` returns the ``(src, dst)`` pairs of
packets created that cycle (usually an empty list). Implementations keep
their pending arrivals in a heap, so the common no-arrival case costs one
comparison.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..config import WorkloadConfig
from ..errors import WorkloadError
from ..network.topology import Topology


class TrafficSource(ABC):
    """Generates packet creations for the whole network."""

    def __init__(self, topology: Topology, config: WorkloadConfig):
        self.topology = topology
        self.config = config
        self.rng = random.Random(config.seed)
        self.packets_offered = 0

    @abstractmethod
    def injections(self, now: int) -> list[tuple[int, int]]:
        """``(src, dst)`` pairs of packets created at router cycle *now*.

        Called with strictly increasing *now*; implementations may assume
        monotonicity.
        """

    def pending_injections(self) -> int:
        """Known future injections, for drain detection.

        Open-ended generators return 0 (the default) — they cannot know;
        finite sources (trace replay) report their remaining entries so
        :meth:`repro.network.simulator.Simulator.drain` waits for them.
        """
        return 0

    def next_injection_cycle(self, now: int) -> int | float | None:
        """Earliest cycle >= *now* at which :meth:`injections` may act.

        The kernel's quiescence fast-forward skips polling this source for
        every cycle strictly before the returned value, so the contract is
        strict: for any cycle ``t`` with ``now <= t < next_injection_cycle
        (now)``, ``injections(t)`` must return ``[]`` *and* be free of
        side effects (no RNG draws, no internal state advance) — skipping
        those calls must be bit-identical to making them.

        Return ``math.inf`` when the source will never inject again, or
        ``None`` (the conservative default) when the source cannot
        predict, which disables fast-forward entirely.
        """
        return None

    def checkpoint(self) -> tuple[object, ...]:
        """An equality-comparable token over all mutable source state.

        The network sanitizer snapshots this around
        :meth:`next_injection_cycle` calls to verify the method's
        side-effect-freedom contract. Subclasses with mutable state beyond
        the base RNG and counter should extend the tuple.
        """
        return (self.packets_offered, self.rng.getstate())

    def _count(self, pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Bookkeeping helper for subclasses: tally and pass through."""
        self.packets_offered += len(pairs)
        return pairs


def make_traffic(topology: Topology, config: WorkloadConfig) -> TrafficSource:
    """Build the traffic source described by *config*."""
    # Imports are local to avoid a cycle: concrete sources import this
    # module for the base class.
    from .permutation import PermutationTraffic
    from .tasks import TwoLevelWorkload
    from .uniform import UniformRandomTraffic

    if config.kind == "two_level":
        return TwoLevelWorkload(topology, config)
    if config.kind == "uniform":
        return UniformRandomTraffic(topology, config)
    if config.kind == "permutation":
        return PermutationTraffic(topology, config)
    raise WorkloadError(f"unknown workload kind {config.kind!r}")
