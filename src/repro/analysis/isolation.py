"""R11: worker-isolation for the process-pool and batched backends.

The sweep harness ships work to pool workers by pickling configs and
replaying them in a fresh interpreter, and the batched kernel deepcopies
whole engines at divergence points. Both contracts are invisible to
per-function lint rules, and both have bitten this repo before (the
``OnOffSourceSet`` live-generator bug fixed by hand in PR 7). R11 makes
them machine-checked, in two parts:

**Global reachability.** Starting from the worker entry points
(:data:`WORKER_ENTRY_POINTS`: ``run_point``, ``run_chunk``,
``run_config_batch``), walk the project call graph and flag every
reachable function that stores a ``global`` or mutates a module-level
mutable container. A worker that writes process-global state produces
results that depend on what else ran in that worker — exactly the
cross-talk the pool backend's determinism guarantee forbids. Findings
carry the shortest call chain from the entry point.

**Picklability by construction.** For the pickled class set — dataclasses
whose name ends in ``Config`` plus every class defined under
``repro/traffic/`` — flag field annotations naming ``Generator``,
dataclass defaults that are lambdas, and (the PR 7 bug, generalized)
instance state assigned from a call to a *generator function*: live
generators cannot be pickled or deepcopied, so they must never reach
``self``. A generator-valued local that escapes into instance state via
``self.<attr>.append(...)``-style calls is flagged too.

Deliberate, justified exceptions (the policy registry's idempotent
once-flag, say) belong in the committed baseline, not in pragmas — see
docs/static_analysis.md.
"""

from __future__ import annotations

import ast

from .model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    Violation,
    dotted_name,
)

#: Functions treated as worker entry points (matched by unqualified name).
#: ``run_worker_chunk`` is the distributed fabric's work unit
#: (:mod:`repro.harness.distributed.worker`) — remote workers must obey
#: the same isolation contract as pool workers.
WORKER_ENTRY_POINTS = (
    "run_point", "run_chunk", "run_config_batch", "run_worker_chunk",
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "extendleft", "sort", "reverse",
    }
)

#: Path fragment selecting traffic-source classes for the pickled set.
TRAFFIC_SCOPE = "repro/traffic/"


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain)


def _function_locals(function: FunctionInfo) -> set[str]:
    """Names that are provably local bindings inside *function*."""
    local: set[str] = set()
    args = function.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        local.add(arg.arg)
    if args.vararg:
        local.add(args.vararg.arg)
    if args.kwarg:
        local.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for sub in ast.walk(target):
                    # Only Store-context names bind: in ``x[k] = v`` or
                    # ``x.attr = v`` the base ``x`` is a *read* of an
                    # existing name, not a new local.
                    if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Store
                    ):
                        local.add(sub.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    local.add(sub.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    local.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            local.add(sub.id)
    return local - declared_global


def _global_stores(function: FunctionInfo) -> list[tuple[int, int, str]]:
    """(line, col, name) for stores to ``global``-declared names."""
    declared: set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return []
    stores: list[tuple[int, int, str]] = []
    for node in ast.walk(function.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    stores.append((node.lineno, node.col_offset, target.id))
    return stores


def _global_mutations(function: FunctionInfo) -> list[tuple[int, int, str, str]]:
    """(line, col, name, how) for in-place mutations of module globals."""
    module = function.module
    local = _function_locals(function)
    candidates = set(module.mutable_globals) - local
    if not candidates:
        return []
    mutations: list[tuple[int, int, str, str]] = []
    for node in ast.walk(function.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in candidates
                and node.func.attr in MUTATOR_METHODS
            ):
                mutations.append(
                    (node.lineno, node.col_offset, receiver.id,
                     f".{node.func.attr}(...)")
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in candidates
                ):
                    mutations.append(
                        (node.lineno, node.col_offset, target.value.id,
                         "[...] = ...")
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in candidates
                ):
                    mutations.append(
                        (node.lineno, node.col_offset, target.value.id,
                         "del [...]")
                    )
    return mutations


def check(model: ProjectModel) -> list[Violation]:
    """Run R11 over *model*; returns sorted violations."""
    violations: list[Violation] = []
    violations.extend(_check_reachability(model))
    violations.extend(_check_picklability(model))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


# -- part 1: mutable-global reachability -------------------------------------


def _check_reachability(model: ProjectModel) -> list[Violation]:
    roots = [
        function.qualname
        for name in WORKER_ENTRY_POINTS
        for function in model.functions_named(name)
    ]
    chains = model.reachable_from(roots)
    violations: list[Violation] = []
    for qualname, chain in sorted(chains.items()):
        function = model.functions[qualname]
        path = function.module.display_path
        where = function.local_name
        via = _chain_text(chain)
        for line, col, name in _global_stores(function):
            violations.append(
                Violation(
                    path, line, col, "R11",
                    f"{where} stores module global {name!r} and is reachable "
                    f"from a worker entry point via {via}; workers must not "
                    "mutate process-global state",
                )
            )
        for line, col, name, how in _global_mutations(function):
            violations.append(
                Violation(
                    path, line, col, "R11",
                    f"{where} mutates module-level container {name!r} "
                    f"({name}{how}) and is reachable from a worker entry "
                    f"point via {via}; workers must not mutate "
                    "process-global state",
                )
            )
    return violations


# -- part 2: picklability by construction ------------------------------------


def _pickled_classes(module: ModuleInfo) -> list[ClassInfo]:
    picked: list[ClassInfo] = []
    for info in module.classes.values():
        if info.is_dataclass and info.name.endswith("Config"):
            picked.append(info)
        elif TRAFFIC_SCOPE in module.path:
            picked.append(info)
    return picked


def _annotation_mentions_generator(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    for sub in ast.walk(annotation):
        name = None
        if isinstance(sub, (ast.Name, ast.Attribute)):
            name = dotted_name(sub)
        if name is not None and name.split(".")[-1] in (
            "Generator", "AsyncGenerator",
        ):
            return True
    return False


def _generator_valued(
    model: ProjectModel, function: FunctionInfo, value: ast.expr
) -> str | None:
    """Why *value* is a live generator, or ``None`` if it provably is not.

    Recognizes generator expressions, calls to project functions that are
    generators, and ``iter(...)`` wrappers around either.
    """
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is None and isinstance(value.func, ast.Attribute):
            name = f"<expr>.{value.func.attr}"
        if name == "iter" and value.args:
            return _generator_valued(model, function, value.args[0])
        if name is not None:
            from .model import CallSite

            resolved = model.resolve_call(
                function, CallSite(name, value, value.lineno, value.col_offset)
            )
            if resolved is not None and resolved.is_generator:
                return f"a call to generator function {resolved.local_name}"
    return None


def _check_picklability(model: ProjectModel) -> list[Violation]:
    violations: list[Violation] = []
    for module in model.iter_modules():
        for info in _pickled_classes(module):
            violations.extend(_check_class_fields(module, info))
            violations.extend(_check_instance_state(model, module, info))
    return violations


def _check_class_fields(module: ModuleInfo, info: ClassInfo) -> list[Violation]:
    violations: list[Violation] = []
    path = module.display_path
    for item in info.node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            field = item.target.id
            if _annotation_mentions_generator(item.annotation):
                violations.append(
                    Violation(
                        path, item.lineno, item.col_offset, "R11",
                        f"field {info.name}.{field} is annotated as a "
                        "generator; live generators cannot be pickled or "
                        "deepcopied, so they must not be instance state",
                    )
                )
            if info.is_dataclass and isinstance(item.value, ast.Lambda):
                violations.append(
                    Violation(
                        path, item.lineno, item.col_offset, "R11",
                        f"field {info.name}.{field} defaults to a lambda; "
                        "lambdas cannot be pickled, so the field value "
                        "breaks the pool backend by construction",
                    )
                )
            if info.is_dataclass and isinstance(item.value, ast.Call):
                callee = dotted_name(item.value.func) or ""
                if callee.split(".")[-1] == "field":
                    for keyword in item.value.keywords:
                        if keyword.arg == "default" and isinstance(
                            keyword.value, ast.Lambda
                        ):
                            violations.append(
                                Violation(
                                    path, item.lineno, item.col_offset, "R11",
                                    f"field {info.name}.{field} defaults to "
                                    "a lambda; lambdas cannot be pickled, so "
                                    "the field value breaks the pool backend "
                                    "by construction",
                                )
                            )
    return violations


def _check_instance_state(
    model: ProjectModel, module: ModuleInfo, info: ClassInfo
) -> list[Violation]:
    violations: list[Violation] = []
    path = module.display_path
    for item in info.node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        function = module.functions.get(f"{info.name}.{item.name}")
        if function is None:
            continue
        tainted: dict[str, str] = {}
        for node in ast.walk(item):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                why = _generator_valued(model, function, value)
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if why is not None:
                            violations.append(
                                Violation(
                                    path, node.lineno, node.col_offset, "R11",
                                    f"{info.name}.{item.name} stores {why} in "
                                    f"self.{target.attr}; live generators "
                                    "cannot be pickled or deepcopied",
                                )
                            )
                    elif isinstance(target, ast.Name):
                        if why is not None:
                            tainted[target.id] = why
                        else:
                            tainted.pop(target.id, None)
            elif isinstance(node, ast.Call) and tainted:
                # A tainted local escaping into instance state through a
                # mutator call whose receiver or argument names self.<attr>
                # (``self._heap.append((t, i, gen))``, ``heapq.heappush(
                # self._heap, (t, i, gen))``).
                touches_self = any(
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    for arg in [node.func, *node.args]
                    for sub in ast.walk(arg)
                )
                if not touches_self:
                    continue
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and sub.id in tainted:
                            violations.append(
                                Violation(
                                    path, node.lineno, node.col_offset, "R11",
                                    f"{info.name}.{item.name} lets {sub.id} "
                                    f"({tainted[sub.id]}) escape into "
                                    "instance state; live generators cannot "
                                    "be pickled or deepcopied",
                                )
                            )
                            break
    return violations
