"""Step-throughput benchmark: event-horizon fast-forward vs plain stepping.

Runs a small matrix of workloads through three kernel variants —

* ``fastforward``: the default kernel (active-router dirty set + quiescence
  skipping),
* ``no-ff``: same dirty-set scheduler, stepping every cycle,
* ``legacy-scan``: the pre-dirty-set kernel proxy (full router scan every
  cycle, no skipping) — the PR-1 baseline,
* ``sanitize``: the default kernel with the :class:`NetworkSanitizer`
  invariant checkers attached (``--sanitize``),

— and reports wall time, simulated cycles/second, skipped-cycle counts, and
speedups. Results are archived as JSON under ``benchmarks/results/``.

Unlike the figure benchmarks this is a standalone script (no
pytest-benchmark) so CI can run it as a perf smoke test::

    PYTHONPATH=src python benchmarks/bench_step_throughput.py --tiny \
        --require-fast-forward

``--require-fast-forward`` exits non-zero if the fast-forward kernel never
skipped a cycle on the low-duty scenarios — the guard that keeps the
optimization from silently rotting into a no-op.
``--max-sanitize-overhead X`` exits non-zero if the sanitizer-enabled run is
more than ``X`` times slower than the plain fast-forward run on any
scenario (the acceptance bar is 2.0 on the tiny matrix).

Reference numbers (8x8, default scale, one warmed repeat, this container):
low-duty 50-task paper workload without DVS ~13x over legacy-scan; with the
history DVS policy ~2x (224 per-port controllers close an EWMA window every
200 cycles, which no amount of skipping removes); saturation within a few
percent of unity either way.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.config import (
    DVSControlConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.harness.serialization import write_json
from repro.network.simulator import Simulator

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class Scenario:
    name: str
    config: SimulationConfig
    #: Low-duty scenarios must fast-forward; saturation need not.
    expect_skipping: bool


def paper_config(
    *,
    radix: int,
    policy: str,
    kind: str,
    rate: float,
    tasks: int,
    warmup: int,
    measure: int,
) -> SimulationConfig:
    return SimulationConfig(
        network=NetworkConfig(radix=radix, dimensions=2),
        dvs=DVSControlConfig(policy=policy),
        workload=WorkloadConfig(
            kind=kind,
            injection_rate=rate,
            seed=1,
            average_tasks=tasks,
            average_task_duration_s=3.0e-6,
        ),
        warmup_cycles=warmup,
        measure_cycles=measure,
    )


def build_scenarios(tiny: bool) -> list[Scenario]:
    radix = 4 if tiny else 8
    warmup = 200 if tiny else 1_000
    measure = 3_000 if tiny else 20_000

    def cfg(**kwargs):
        return paper_config(radix=radix, warmup=warmup, measure=measure, **kwargs)

    return [
        Scenario(
            "paper-50tasks-low-nodvs",
            cfg(policy="none", kind="two_level", rate=0.01, tasks=50),
            expect_skipping=True,
        ),
        Scenario(
            "paper-50tasks-low-dvs",
            cfg(policy="history", kind="two_level", rate=0.01, tasks=50),
            expect_skipping=True,
        ),
        Scenario(
            "paper-100tasks",
            cfg(policy="history", kind="two_level", rate=0.05, tasks=100),
            expect_skipping=True,
        ),
        Scenario(
            "near-zero-load-uniform",
            cfg(policy="none", kind="uniform", rate=0.005, tasks=50),
            expect_skipping=True,
        ),
        Scenario(
            "saturation-uniform",
            cfg(policy="history", kind="uniform", rate=0.8, tasks=50),
            expect_skipping=False,
        ),
    ]


VARIANTS = ("fastforward", "no-ff", "legacy-scan", "sanitize")


def run_variant(config: SimulationConfig, variant: str, repeats: int) -> dict:
    """Best-of-*repeats* wall time for one kernel variant on *config*."""
    best = None
    simulator = None
    for _ in range(repeats):
        simulator = Simulator(
            config,
            fast_forward=(variant != "no-ff" and variant != "legacy-scan"),
            sanitize=(variant == "sanitize"),
        )
        if variant == "legacy-scan":
            simulator.legacy_scan = True
        start = time.perf_counter()
        simulator.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    cycles = config.total_cycles
    return {
        "wall_s": best,
        "cycles": cycles,
        "cycles_per_s": cycles / best if best else float("inf"),
        "idle_cycles_skipped": simulator.idle_cycles_skipped,
        "idle_spans": simulator.idle_spans,
    }


def run_scenario(scenario: Scenario, repeats: int) -> dict:
    timings = {
        variant: run_variant(scenario.config, variant, repeats)
        for variant in VARIANTS
    }
    fast = timings["fastforward"]
    return {
        "scenario": scenario.name,
        "expect_skipping": scenario.expect_skipping,
        "variants": timings,
        "speedup_vs_no_ff": timings["no-ff"]["wall_s"] / fast["wall_s"],
        "speedup_vs_legacy": timings["legacy-scan"]["wall_s"] / fast["wall_s"],
        "sanitize_overhead": timings["sanitize"]["wall_s"] / fast["wall_s"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI-sized runs (4x4 mesh, short cycle counts)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repeats per variant; best is reported (default 2)",
    )
    parser.add_argument(
        "--require-fast-forward", action="store_true",
        help="exit non-zero unless low-duty scenarios actually skipped cycles",
    )
    parser.add_argument(
        "--max-sanitize-overhead", type=float, default=0.0, metavar="X",
        help="exit non-zero if sanitize/fastforward wall-time ratio exceeds X "
             "on any scenario (0 = don't check)",
    )
    parser.add_argument(
        "--json", default=str(RESULTS_DIR / "step_throughput.json"),
        help="result JSON path ('' to skip writing)",
    )
    args = parser.parse_args(argv)

    rows = []
    for scenario in build_scenarios(args.tiny):
        row = run_scenario(scenario, max(1, args.repeats))
        rows.append(row)
        fast = row["variants"]["fastforward"]
        print(
            f"{scenario.name:28s} "
            f"ff {fast['wall_s']*1e3:8.1f} ms "
            f"({fast['cycles_per_s']/1e3:8.1f} kcyc/s, "
            f"{fast['idle_cycles_skipped']}/{fast['cycles']} skipped)  "
            f"vs no-ff {row['speedup_vs_no_ff']:5.2f}x  "
            f"vs legacy {row['speedup_vs_legacy']:5.2f}x  "
            f"sanitize {row['sanitize_overhead']:5.2f}x"
        )

    report = {
        "benchmark": "step_throughput",
        "tiny": args.tiny,
        "repeats": max(1, args.repeats),
        "rows": rows,
    }
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json(report, path)
        print(f"\nresults written to {path}")

    if args.require_fast_forward:
        dead = [
            row["scenario"]
            for row in rows
            if row["expect_skipping"]
            and row["variants"]["fastforward"]["idle_cycles_skipped"] == 0
        ]
        if dead:
            print(
                "FAIL: fast-forward never engaged on: " + ", ".join(dead),
                file=sys.stderr,
            )
            return 1
        print("fast-forward engaged on all low-duty scenarios")

    if args.max_sanitize_overhead > 0:
        slow = [
            (row["scenario"], row["sanitize_overhead"])
            for row in rows
            if row["sanitize_overhead"] > args.max_sanitize_overhead
        ]
        if slow:
            print(
                "FAIL: sanitizer overhead above "
                f"{args.max_sanitize_overhead:.2f}x on: "
                + ", ".join(f"{name} ({ratio:.2f}x)" for name, ratio in slow),
                file=sys.stderr,
            )
            return 1
        print(
            "sanitizer overhead within "
            f"{args.max_sanitize_overhead:.2f}x on all scenarios"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
