"""The encoded paper facts must agree with the models built from them."""

import pytest

from repro.config import LinkConfig, NetworkConfig, WorkloadConfig
from repro.core.hardware import ControllerHardwareModel
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER
from repro.harness.paper import (
    HARDWARE_FACTS,
    HEADLINE_CLAIMS,
    LINK_FACTS,
    ROUTER_FACTS,
    WORKLOAD_FACTS,
    headline_table,
)
from repro.power.report import nominal_network_power_w
from repro.power.router_power import RouterPowerProfile
from repro.units import bandwidth_bits_per_s


class TestLinkFactsConsistency:
    def test_vf_table_matches_facts(self):
        assert len(PAPER_TABLE) == LINK_FACTS["levels"]
        assert PAPER_TABLE.frequency(0) == LINK_FACTS["min_frequency_hz"]
        assert PAPER_TABLE.frequency(9) == LINK_FACTS["max_frequency_hz"]
        assert PAPER_TABLE.voltage(0) == LINK_FACTS["min_voltage_v"]
        assert PAPER_TABLE.voltage(9) == LINK_FACTS["max_voltage_v"]

    def test_power_model_matches_facts(self):
        assert PAPER_LINK_POWER.level_power_w(PAPER_TABLE, 0) == pytest.approx(
            LINK_FACTS["min_link_power_w"]
        )
        assert PAPER_LINK_POWER.level_power_w(PAPER_TABLE, 9) == pytest.approx(
            LINK_FACTS["max_link_power_w"]
        )

    def test_channel_bandwidth(self):
        assert bandwidth_bits_per_s(
            LINK_FACTS["max_frequency_hz"],
            LINK_FACTS["lanes_per_channel"],
            LINK_FACTS["mux_ratio"],
        ) == pytest.approx(LINK_FACTS["channel_bandwidth_bps"])

    def test_link_config_defaults_match(self):
        config = LinkConfig()
        assert config.voltage_transition_s == LINK_FACTS["voltage_transition_s"]
        assert (
            config.frequency_transition_link_cycles
            == LINK_FACTS["frequency_transition_link_cycles"]
        )
        assert config.filter_capacitance_f == LINK_FACTS["filter_capacitance_f"]
        assert config.regulator_efficiency == LINK_FACTS["regulator_efficiency"]


class TestRouterFactsConsistency:
    def test_network_config_defaults_match(self):
        config = NetworkConfig()
        assert config.radix == ROUTER_FACTS["mesh_radix"]
        assert config.router_clock_hz == ROUTER_FACTS["router_clock_hz"]
        assert config.vcs_per_port == ROUTER_FACTS["virtual_channels"]
        assert config.buffers_per_port == ROUTER_FACTS["flit_buffers_per_port"]
        assert config.flits_per_packet == ROUTER_FACTS["flits_per_packet"]
        assert config.pipeline_depth == ROUTER_FACTS["pipeline_stages"]

    def test_nominal_power(self):
        assert nominal_network_power_w() == pytest.approx(
            ROUTER_FACTS["nominal_network_power_w"]
        )

    def test_fig7_anchors(self):
        profile = RouterPowerProfile()
        assert profile.link_fraction == ROUTER_FACTS["link_power_fraction"]
        assert profile.allocator_power_w == ROUTER_FACTS["allocator_power_w"]


class TestWorkloadFactsConsistency:
    def test_workload_defaults_match(self):
        config = WorkloadConfig()
        assert config.on_shape == WORKLOAD_FACTS["on_shape"]
        assert config.off_shape == WORKLOAD_FACTS["off_shape"]
        assert (
            config.onoff_sources_per_task
            == WORKLOAD_FACTS["onoff_sources_per_task"]
        )
        low, high = WORKLOAD_FACTS["task_duration_range_s"]
        assert low <= config.average_task_duration_s <= high


class TestHardwareFactsConsistency:
    def test_model_within_envelope(self):
        model = ControllerHardwareModel()
        assert model.total_gates <= HARDWARE_FACTS["gate_count"] * 1.4
        assert model.power_w < HARDWARE_FACTS["max_power_w"]


class TestHeadline:
    def test_claims_well_formed(self):
        metrics = [c.metric for c in HEADLINE_CLAIMS]
        assert len(metrics) == len(set(metrics))
        assert all(c.value > 0 for c in HEADLINE_CLAIMS)

    def test_reproduction_status_honest(self):
        """The latency claims are explicitly marked as not reproduced."""
        by_metric = {c.metric: c for c in HEADLINE_CLAIMS}
        assert not by_metric["zero_load_latency_increase"].reproduced
        assert by_metric["max_power_savings_x"].reproduced

    def test_table_rendering(self):
        rows = headline_table()
        assert len(rows) == len(HEADLINE_CLAIMS)
        assert all(len(row) == 3 for row in rows)
