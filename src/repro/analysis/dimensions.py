"""R10: unit/dimension analysis for the power and energy bookkeeping.

The paper's Eq.(1)-style accounting mixes quantities whose magnitudes
overlap numerically but whose dimensions do not: clock cycles, volts,
hertz, milliwatts, femtojoules (the batched kernel's integer ledgers),
and joules. A femtojoule count added to a milliwatt figure is a
modeling bug that no test may ever sample. This pass infers a dimension
for every expression it can prove one for and flags:

* ``+``/``-`` between two expressions of *different known* dimensions;
* ordering/equality comparison between different known dimensions;
* assignment of one known dimension to a target named (or annotated)
  as another, without a conversion in between.

Dimensions come from two sources, both declared in :mod:`repro.units`:

* **annotations** — the ``Quantity`` NewTypes (``Cycles``, ``Volts``,
  ``Hertz``, ``Milliwatts``, ``Femtojoules``, ``Joules``) on function
  parameters, returns, and ``AnnAssign`` targets;
* **naming conventions** — the repo-wide suffixes ``*_fj``, ``*_mw``,
  ``*_v``, ``*_cycles`` on variables, attributes, and functions.

Inference is deliberately conservative: multiplication, division, and
anything else that changes dimension yields *unknown*, and unknown
never triggers a finding. The pass runs over ``repro/core/``,
``repro/power/``, and ``repro/network/batched.py`` — the modules that
carry the paper's power/energy arithmetic.
"""

from __future__ import annotations

import ast

from .model import (
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    Violation,
    dotted_name,
)

#: Files the dimension pass applies to.
DIMENSION_SCOPE = ("repro/core/", "repro/power/", "repro/network/batched.py")

#: Identifier suffix -> dimension.
SUFFIX_DIMENSIONS = {
    "_fj": "femtojoules",
    "_mw": "milliwatts",
    "_v": "volts",
    "_cycles": "cycles",
}

#: Quantity NewType annotation name -> dimension (see repro/units.py).
ANNOTATION_DIMENSIONS = {
    "Cycles": "cycles",
    "Volts": "volts",
    "Hertz": "hertz",
    "Milliwatts": "milliwatts",
    "Femtojoules": "femtojoules",
    "Joules": "joules",
}

#: Known converter functions (matched on the last dotted component) ->
#: dimension of the value they return.
CONVERTER_RETURNS = {
    "joules_to_femtojoules": "femtojoules",
    "femtojoules_to_joules": "joules",
    "seconds_to_cycles": "cycles",
    "mhz": "hertz",
    "ghz": "hertz",
}

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def name_dimension(name: str) -> str | None:
    """Dimension implied by identifier *name*'s suffix, if any."""
    for suffix, dimension in SUFFIX_DIMENSIONS.items():
        if name.endswith(suffix) and name != suffix:
            return dimension
    return None


def annotation_dimension(annotation: ast.expr | None) -> str | None:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    name = dotted_name(annotation)
    if name is None:
        return None
    return ANNOTATION_DIMENSIONS.get(name.split(".")[-1])


class _FunctionDimensions:
    """Per-function dimension environment and expression inference."""

    def __init__(self, model: ProjectModel, function: FunctionInfo) -> None:
        self.model = model
        self.function = function
        self.env: dict[str, str] = {}
        args = function.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            dimension = annotation_dimension(arg.annotation) or name_dimension(arg.arg)
            if dimension is not None:
                self.env[arg.arg] = dimension

    def bind(self, name: str, dimension: str | None) -> None:
        if dimension is not None:
            self.env[name] = dimension
        else:
            self.env.pop(name, None)

    # -- inference ---------------------------------------------------------

    def infer(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.env.get(node.id) or name_dimension(node.id)
        if isinstance(node, ast.Attribute):
            return name_dimension(node.attr)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.infer(node.left)
            right = self.infer(node.right)
            if left is not None and right is not None:
                return left if left == right else None
            return left or right
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body == orelse else None
        if isinstance(node, (ast.Await, ast.Starred)):
            return self.infer(node.value)
        return None

    def _infer_call(self, node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        last = name.split(".")[-1]
        if last in CONVERTER_RETURNS:
            return CONVERTER_RETURNS[last]
        if last in ("abs", "min", "max", "round", "sum"):
            # Dimension-preserving builtins: infer from the arguments.
            dims = {self.infer(arg) for arg in node.args}
            dims.discard(None)
            if len(dims) == 1:
                return dims.pop()
            return None
        if last in ("int", "float"):
            if len(node.args) == 1:
                return self.infer(node.args[0])
            return None
        # Resolved project function with an annotated Quantity return.
        resolved = self.model.resolve_call(
            self.function,
            # Reuse the model's CallSite-shaped resolution through a
            # lightweight stand-in; the resolver only reads name/node.
            _call_site(name, node),
        )
        if resolved is not None:
            dimension = annotation_dimension(resolved.node.returns)
            if dimension is not None:
                return dimension
        # Function naming convention: ``*_cycles()`` returns cycles.
        return name_dimension(last)


def _call_site(name: str, node: ast.Call) -> CallSite:
    return CallSite(name, node, node.lineno, node.col_offset)


def _target_dimension(
    scope: _FunctionDimensions, target: ast.expr, annotation: ast.expr | None = None
) -> tuple[str | None, str | None]:
    """(declared dimension, display name) for an assignment target."""
    declared = annotation_dimension(annotation)
    if isinstance(target, ast.Name):
        return declared or name_dimension(target.id), target.id
    if isinstance(target, ast.Attribute):
        return declared or name_dimension(target.attr), dotted_name(target) or target.attr
    return declared, None


def check(model: ProjectModel) -> list[Violation]:
    """Run R10 over *model*; returns sorted violations."""
    violations: list[Violation] = []
    for module in model.iter_modules():
        if not any(fragment in module.path for fragment in DIMENSION_SCOPE):
            continue
        for function in module.functions.values():
            violations.extend(_check_function(model, module, function))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def _check_function(
    model: ProjectModel, module: ModuleInfo, function: FunctionInfo
) -> list[Violation]:
    scope = _FunctionDimensions(model, function)
    violations: list[Violation] = []
    path = module.display_path
    reported: set[int] = set()

    def flag(node: ast.AST, message: str) -> None:
        if node.lineno in reported:
            return
        reported.add(node.lineno)
        violations.append(
            Violation(path, node.lineno, node.col_offset, "R10", message)
        )

    def scan_expression(node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, (ast.Add, ast.Sub)):
                left = scope.infer(sub.left)
                right = scope.infer(sub.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(sub.op, ast.Add) else "-"
                    flag(
                        sub,
                        f"dimension mismatch: {left} {op} {right} "
                        f"({ast.unparse(sub)}); convert explicitly via "
                        "repro.units before combining",
                    )
            elif isinstance(sub, ast.Compare):
                operands = [sub.left] + list(sub.comparators)
                for index, op in enumerate(sub.ops):
                    if not isinstance(op, _COMPARE_OPS):
                        continue
                    left = scope.infer(operands[index])
                    right = scope.infer(operands[index + 1])
                    if left is not None and right is not None and left != right:
                        flag(
                            sub,
                            f"dimension mismatch in comparison: {left} vs "
                            f"{right} ({ast.unparse(sub)}); comparing "
                            "different units is never meaningful",
                        )

    # Statement walk in source order so the def-use environment is
    # populated before later uses (last assignment wins on branches).
    statements = [
        stmt
        for stmt in ast.walk(function.node)
        if isinstance(stmt, ast.stmt) and stmt is not function.node
    ]
    statements.sort(key=lambda stmt: (stmt.lineno, stmt.col_offset))
    for stmt in statements:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.Assign):
            scan_expression(stmt.value)
            value_dim = scope.infer(stmt.value)
            for target in stmt.targets:
                declared, display = _target_dimension(scope, target)
                if (
                    declared is not None
                    and value_dim is not None
                    and declared != value_dim
                ):
                    flag(
                        stmt,
                        f"unconverted assignment: {display or 'target'} is "
                        f"{declared} but the value is {value_dim} "
                        f"({ast.unparse(stmt.value)}); convert via repro.units",
                    )
                elif isinstance(target, ast.Name):
                    scope.bind(target.id, value_dim)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                scan_expression(stmt.value)
                value_dim = scope.infer(stmt.value)
                declared, display = _target_dimension(
                    scope, stmt.target, stmt.annotation
                )
                if (
                    declared is not None
                    and value_dim is not None
                    and declared != value_dim
                ):
                    flag(
                        stmt,
                        f"unconverted assignment: {display or 'target'} is "
                        f"{declared} but the value is {value_dim} "
                        f"({ast.unparse(stmt.value)}); convert via repro.units",
                    )
                elif isinstance(stmt.target, ast.Name):
                    scope.bind(stmt.target.id, value_dim or declared)
            elif isinstance(stmt.target, ast.Name):
                scope.bind(stmt.target.id, annotation_dimension(stmt.annotation))
        elif isinstance(stmt, ast.AugAssign):
            scan_expression(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                declared, display = _target_dimension(scope, stmt.target)
                if isinstance(stmt.target, ast.Name) and declared is None:
                    declared = scope.env.get(stmt.target.id)
                value_dim = scope.infer(stmt.value)
                if (
                    declared is not None
                    and value_dim is not None
                    and declared != value_dim
                ):
                    op = "+=" if isinstance(stmt.op, ast.Add) else "-="
                    flag(
                        stmt,
                        f"dimension mismatch: {display or 'target'} "
                        f"({declared}) {op} {value_dim} value "
                        f"({ast.unparse(stmt.value)}); convert via repro.units",
                    )
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    scan_expression(child)
    return violations
