"""Tests for sphere-of-locality destination selection."""

import random

import pytest

from repro.errors import WorkloadError
from repro.network.topology import Topology
from repro.traffic.locality import SphereOfLocality


class TestChoice:
    def test_never_self(self):
        topology = Topology(4, 2)
        locality = SphereOfLocality(topology, radius=2, local_probability=0.5)
        rng = random.Random(1)
        for src in range(topology.node_count):
            for _ in range(20):
                assert locality.choose(src, rng) != src

    def test_always_local_with_probability_one(self):
        topology = Topology(5, 2)
        locality = SphereOfLocality(topology, radius=2, local_probability=1.0)
        rng = random.Random(2)
        src = topology.node_at((2, 2))
        for _ in range(100):
            dst = locality.choose(src, rng)
            assert topology.distance(src, dst) <= 2

    def test_never_local_with_probability_zero(self):
        topology = Topology(5, 2)
        locality = SphereOfLocality(topology, radius=2, local_probability=0.0)
        rng = random.Random(3)
        src = topology.node_at((2, 2))
        for _ in range(100):
            dst = locality.choose(src, rng)
            assert topology.distance(src, dst) > 2

    def test_local_fraction_matches_probability(self):
        topology = Topology(8, 2)
        locality = SphereOfLocality(topology, radius=2, local_probability=0.7)
        rng = random.Random(4)
        src = topology.node_at((4, 4))
        local = sum(
            1
            for _ in range(3_000)
            if topology.distance(src, locality.choose(src, rng)) <= 2
        )
        assert local / 3_000 == pytest.approx(0.7, abs=0.05)

    def test_radius_covers_whole_network(self):
        """When every node is within the radius, all picks are 'local'."""
        topology = Topology(3, 2)
        locality = SphereOfLocality(topology, radius=10, local_probability=0.0)
        rng = random.Random(5)
        dst = locality.choose(0, rng)  # no far nodes exist; falls back local
        assert dst != 0

    def test_validation(self):
        topology = Topology(3, 2)
        with pytest.raises(WorkloadError):
            SphereOfLocality(topology, radius=0, local_probability=0.5)
        with pytest.raises(WorkloadError):
            SphereOfLocality(topology, radius=2, local_probability=1.5)
