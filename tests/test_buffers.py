"""Tests for VC buffers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, FlowControlError
from repro.network.buffers import VCBuffer
from repro.network.packet import Packet


def flits(n=5):
    return Packet(0, 1, n, 0).make_flits()


class TestVCBuffer:
    def test_fifo_order(self):
        buffer = VCBuffer(8)
        fs = flits(5)
        for i, flit in enumerate(fs):
            buffer.enqueue(flit, now=i)
        assert [buffer.dequeue() for _ in range(5)] == fs

    def test_capacity_enforced(self):
        buffer = VCBuffer(2)
        fs = flits(3)
        buffer.enqueue(fs[0], 0)
        buffer.enqueue(fs[1], 0)
        assert buffer.is_full
        with pytest.raises(FlowControlError):
            buffer.enqueue(fs[2], 0)

    def test_dequeue_empty_raises(self):
        with pytest.raises(FlowControlError):
            VCBuffer(2).dequeue()

    def test_head_peek(self):
        buffer = VCBuffer(4)
        assert buffer.head() is None
        fs = flits(2)
        buffer.enqueue(fs[0], 0)
        assert buffer.head() is fs[0]
        assert len(buffer) == 1  # peek does not consume

    def test_arrival_stamp(self):
        buffer = VCBuffer(4)
        flit = flits(1)[0]
        buffer.enqueue(flit, now=123)
        assert flit.buffer_arrival_cycle == 123

    def test_free_slots(self):
        buffer = VCBuffer(3)
        assert buffer.free_slots == 3
        buffer.enqueue(flits(1)[0], 0)
        assert buffer.free_slots == 2

    def test_bad_capacity(self):
        with pytest.raises(ConfigError):
            VCBuffer(0)

    @given(ops=st.lists(st.booleans(), max_size=60))
    def test_occupancy_invariant(self, ops):
        """Random enqueue/dequeue keeps 0 <= len <= capacity."""
        buffer = VCBuffer(4)
        source = iter(flits(60))
        for enqueue in ops:
            if enqueue and not buffer.is_full:
                buffer.enqueue(next(source), 0)
            elif not enqueue and not buffer.is_empty:
                buffer.dequeue()
            assert 0 <= len(buffer) <= 4
            assert buffer.free_slots == 4 - len(buffer)
