"""Threshold presets for the history-based DVS policy.

:data:`TABLE1_DEFAULT` reproduces the paper's Table 1 (the configuration
used for the headline results) and :data:`TABLE2_SETTINGS` reproduces
Table 2, the six progressively more aggressive light-load threshold pairs
used in the trade-off study of Section 4.4.2 (Figures 13-15).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class ThresholdSet:
    """The four decision thresholds plus the congestion litmus level.

    When predicted input-buffer utilization is below ``congested_bu`` the
    network is considered uncongested and the light-load pair
    ``(low_uncongested, high_uncongested)`` applies; otherwise the
    congested pair applies. In either regime, predicted link utilization
    below the low threshold steps the link down a level; above the high
    threshold steps it up.
    """

    low_uncongested: float = 0.3
    high_uncongested: float = 0.4
    low_congested: float = 0.6
    high_congested: float = 0.7
    congested_bu: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "low_uncongested",
            "high_uncongested",
            "low_congested",
            "high_congested",
            "congested_bu",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value!r}")
        if self.low_uncongested >= self.high_uncongested:
            raise ConfigError(
                "uncongested low threshold must be below the high threshold"
            )
        if self.low_congested >= self.high_congested:
            raise ConfigError(
                "congested low threshold must be below the high threshold"
            )

    def select(self, predicted_bu: float) -> tuple[float, float]:
        """Return the ``(T_low, T_high)`` pair for *predicted_bu*."""
        if predicted_bu < self.congested_bu:
            return self.low_uncongested, self.high_uncongested
        return self.low_congested, self.high_congested

    def with_light_load_pair(self, low: float, high: float) -> "ThresholdSet":
        """Copy with a replaced uncongested pair (the Table 2 knob)."""
        return replace(self, low_uncongested=low, high_uncongested=high)


#: Paper Table 1: W=3, H=200, B_congested=0.5, TL=(0.3, 0.4), TH=(0.6, 0.7).
TABLE1_DEFAULT = ThresholdSet()

#: Paper Table 2: light-load threshold pairs I..VI, least to most aggressive.
TABLE2_SETTINGS: dict[str, ThresholdSet] = {
    "I": TABLE1_DEFAULT.with_light_load_pair(0.2, 0.3),
    "II": TABLE1_DEFAULT.with_light_load_pair(0.25, 0.35),
    "III": TABLE1_DEFAULT.with_light_load_pair(0.3, 0.4),
    "IV": TABLE1_DEFAULT.with_light_load_pair(0.35, 0.45),
    "V": TABLE1_DEFAULT.with_light_load_pair(0.4, 0.5),
    "VI": TABLE1_DEFAULT.with_light_load_pair(0.5, 0.6),
}
