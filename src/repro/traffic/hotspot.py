"""Hotspot traffic.

A classic adversarial reference workload (not in the paper's evaluation,
but standard in the literature it spawned): a fraction of all packets
target a small set of hotspot nodes, the rest are uniform random. Useful
for studying how the DVS policy behaves around a persistent congestion
tree — the hotspot's feeding links run hot (and stay fast) while the rest
of the network idles (and scales down).
"""

from __future__ import annotations

import math

from ..config import WorkloadConfig
from ..errors import WorkloadError
from ..network.topology import Topology
from .base import TrafficSource


class HotspotTraffic(TrafficSource):
    """Uniform traffic with a configurable hotspot bias.

    Not constructible through :func:`repro.traffic.base.make_traffic`
    (``WorkloadConfig.kind`` stays paper-faithful); build it directly and
    pass it to the simulator via the ``traffic`` argument.
    """

    def __init__(
        self,
        topology: Topology,
        config: WorkloadConfig,
        *,
        hotspots: tuple[int, ...] | None = None,
        hotspot_fraction: float = 0.3,
    ):
        super().__init__(topology, config)
        if hotspots is None:
            center = topology.radix // 2
            hotspots = (topology.node_at((center,) * topology.dimensions),)
        for node in hotspots:
            if not 0 <= node < topology.node_count:
                raise WorkloadError(f"hotspot {node} out of range")
        if not hotspots:
            raise WorkloadError("need at least one hotspot")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise WorkloadError("hotspot fraction must be in [0, 1]")
        self.hotspots = tuple(hotspots)
        self.hotspot_fraction = hotspot_fraction
        self._next_time = 0.0
        if config.injection_rate > 0.0:
            self._next_time = self.rng.expovariate(config.injection_rate)

    def injections(self, now: int) -> list[tuple[int, int]]:
        rate = self.config.injection_rate
        if rate <= 0.0 or self._next_time > now:
            return []
        pairs: list[tuple[int, int]] = []
        rng = self.rng
        node_count = self.topology.node_count
        while self._next_time <= now:
            if rng.random() < self.hotspot_fraction:
                dst = rng.choice(self.hotspots)
                src = rng.randrange(node_count - 1)
                if src >= dst:
                    src += 1
            else:
                src = rng.randrange(node_count)
                dst = rng.randrange(node_count - 1)
                if dst >= src:
                    dst += 1
            pairs.append((src, dst))
            self._next_time += rng.expovariate(rate)
        return self._count(pairs)

    def next_injection_cycle(self, now: int) -> int | float:
        if self.config.injection_rate <= 0.0:
            return math.inf
        next_cycle = math.ceil(self._next_time)
        return next_cycle if next_cycle > now else now
