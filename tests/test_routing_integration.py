"""Routing behaviour at the network level: adaptivity, torus, saturation."""

from repro.network.simulator import Simulator
from repro.traffic.trace import TraceReplaySource

from .conftest import small_config


def run_with_trace(config, trace, cycles):
    simulator = Simulator(config)
    simulator.traffic = TraceReplaySource(simulator.topology, config.workload, trace)
    simulator.begin_measurement()
    simulator.run_cycles(cycles)
    simulator.traffic = TraceReplaySource(simulator.topology, config.workload, [])
    simulator.drain(max_cycles=200_000)
    return simulator


def transpose_trace(radix, rate_per_node, cycles):
    """A transpose permutation injected at a fixed per-node rate."""
    import random

    rng = random.Random(5)
    trace = []
    nodes = radix * radix
    for now in range(cycles):
        for node in range(nodes):
            x, y = node % radix, node // radix
            dst = x * radix + y
            if dst != node and rng.random() < rate_per_node:
                trace.append((now, node, dst))
    return trace


class TestAdaptiveVsDeterministic:
    def test_adaptive_helps_on_transpose(self):
        """Transpose concentrates DOR traffic on few turns; minimal
        adaptive routing spreads it and cuts latency at equal load."""
        radix = 4
        trace = transpose_trace(radix, rate_per_node=0.035, cycles=3_000)
        latencies = {}
        for routing in ("dor", "adaptive"):
            config = small_config(radix=radix, routing=routing, rate=0.001)
            simulator = run_with_trace(config, list(trace), 3_000)
            latencies[routing] = simulator.latency.stats().mean
        assert latencies["adaptive"] <= latencies["dor"] * 1.05

    def test_both_deliver_everything(self):
        radix = 4
        trace = transpose_trace(radix, rate_per_node=0.03, cycles=2_000)
        for routing in ("dor", "adaptive"):
            config = small_config(radix=radix, routing=routing, rate=0.001)
            simulator = run_with_trace(config, list(trace), 2_000)
            assert simulator.total_ejected_packets == len(trace)


class TestTorusVsMesh:
    def test_torus_cuts_corner_to_corner_latency(self):
        """Wraparound halves the worst-case path, visible in latency."""
        corner_trace = [(i * 40, 0, 15) for i in range(30)]  # (0,0)->(3,3)
        mesh = run_with_trace(
            small_config(radix=4, rate=0.001), list(corner_trace), 1_500
        )
        torus = run_with_trace(
            small_config(radix=4, wraparound=True, rate=0.001),
            list(corner_trace),
            1_500,
        )
        # Mesh distance 6 hops; torus distance 2 hops.
        assert torus.latency.stats().mean < mesh.latency.stats().mean


class TestSaturationBehaviour:
    def test_latency_monotone_in_offered_load(self):
        means = []
        for rate in (0.1, 0.8, 2.5):
            config = small_config(rate=rate, warmup=500, measure=3_000)
            result = Simulator(config).run()
            means.append(result.latency.mean)
        assert means[0] < means[2]

    def test_accepted_rate_saturates(self):
        accepted = []
        for rate in (0.5, 4.0, 8.0):
            config = small_config(rate=rate, warmup=500, measure=3_000)
            result = Simulator(config).run()
            accepted.append(result.accepted_rate)
        # Offered 4 -> 8 must not double accepted throughput (saturation).
        assert accepted[2] < accepted[1] * 1.7
        assert accepted[1] > accepted[0]
