"""Permutation traffic patterns.

Permutation workloads stress routing with spatial variance: every source
sends to one fixed destination given by a permutation of the node id or
coordinates. The paper notes they "do not capture any temporal variance",
so arrivals here are Poisson at the aggregate rate with uniform choice of
source (keeping per-source rates equal in expectation).

Patterns (classic k-ary n-cube suite):

* ``transpose`` — coordinates reversed (matrix transpose on 2-D meshes);
* ``bit_complement`` — destination id is the bitwise complement;
* ``bit_reverse`` — destination id is the bit-reversed id;
* ``shuffle`` — destination id is the id rotated left by one bit.

Bit-indexed patterns require a power-of-two node count; sources whose
image equals themselves are skipped (they inject nothing), as is
conventional.
"""

from __future__ import annotations

import math

from ..config import WorkloadConfig
from ..errors import WorkloadError
from ..network.topology import Topology
from .base import TrafficSource


def _transpose(topology: Topology, node: int) -> int:
    coords = topology.coords(node)
    return topology.node_at(tuple(reversed(coords)))


def _node_bits(topology: Topology) -> int:
    bits = int(math.log2(topology.node_count))
    if 2**bits != topology.node_count:
        raise WorkloadError(
            "bit-indexed permutations need a power-of-two node count, "
            f"got {topology.node_count}"
        )
    return bits


def _bit_complement(topology: Topology, node: int) -> int:
    bits = _node_bits(topology)
    return node ^ ((1 << bits) - 1)


def _bit_reverse(topology: Topology, node: int) -> int:
    bits = _node_bits(topology)
    result = 0
    for i in range(bits):
        if node & (1 << i):
            result |= 1 << (bits - 1 - i)
    return result


def _shuffle(topology: Topology, node: int) -> int:
    bits = _node_bits(topology)
    mask = (1 << bits) - 1
    return ((node << 1) | (node >> (bits - 1))) & mask


#: Name -> permutation function registry.
PERMUTATIONS = {
    "transpose": _transpose,
    "bit_complement": _bit_complement,
    "bit_reverse": _bit_reverse,
    "shuffle": _shuffle,
}


class PermutationTraffic(TrafficSource):
    """Fixed-destination traffic under a named permutation."""

    def __init__(self, topology: Topology, config: WorkloadConfig):
        super().__init__(topology, config)
        try:
            mapping = PERMUTATIONS[config.permutation]
        except KeyError:
            raise WorkloadError(
                f"unknown permutation {config.permutation!r}; "
                f"choose from {sorted(PERMUTATIONS)}"
            ) from None
        self.destinations = [mapping(topology, n) for n in range(topology.node_count)]
        self.active_sources = [
            n for n in range(topology.node_count) if self.destinations[n] != n
        ]
        if not self.active_sources:
            raise WorkloadError(
                f"permutation {config.permutation!r} is the identity here"
            )
        self._next_time = 0.0
        if config.injection_rate > 0.0:
            self._next_time = self.rng.expovariate(config.injection_rate)

    def injections(self, now: int) -> list[tuple[int, int]]:
        rate = self.config.injection_rate
        if rate <= 0.0 or self._next_time > now:
            return []
        pairs: list[tuple[int, int]] = []
        rng = self.rng
        while self._next_time <= now:
            src = rng.choice(self.active_sources)
            pairs.append((src, self.destinations[src]))
            self._next_time += rng.expovariate(rate)
        return self._count(pairs)

    def next_injection_cycle(self, now: int) -> int | float:
        if self.config.injection_rate <= 0.0:
            return math.inf
        next_cycle = math.ceil(self._next_time)
        return next_cycle if next_cycle > now else now
