#!/usr/bin/env python3
"""How DVS link transition speeds shape network performance (Figs 16-17).

Runs the same bursty workload over links with different voltage-ramp and
frequency-lock times, reproducing the paper's Section 4.4.3 findings in
miniature:

* slow transitions track traffic poorly (latency/throughput suffer);
* a faster voltage ramp with a *slow* frequency lock can hurt — the policy
  transitions more often and the link is dead during every retune;
* power is far less sensitive to transition speed than latency.

Run:  python examples/link_characteristics.py
"""

from repro import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    Simulator,
    WorkloadConfig,
)

#: (label, voltage ramp seconds, frequency lock in link clocks)
VARIANTS = [
    ("slow V, slow f", 2.0e-6, 40),
    ("fast V, slow f", 0.2e-6, 40),
    ("slow V, fast f", 2.0e-6, 4),
    ("fast V, fast f", 0.2e-6, 4),
]


def run_variant(voltage_s: float, freq_cycles: int):
    config = SimulationConfig(
        network=NetworkConfig(radix=4, dimensions=2),
        link=LinkConfig(
            voltage_transition_s=voltage_s,
            frequency_transition_link_cycles=freq_cycles,
        ),
        dvs=DVSControlConfig(policy="history"),
        workload=WorkloadConfig(
            kind="two_level",
            injection_rate=0.5,
            average_tasks=20,
            average_task_duration_s=10.0e-6,  # short tasks: high variance
            onoff_sources_per_task=16,
            seed=7,
        ),
        warmup_cycles=6_000,
        measure_cycles=24_000,
    )
    return Simulator(config).run()


def main() -> None:
    print("Short-task workload (high temporal variance), 4x4 mesh\n")
    print(f"{'link variant':<16} {'latency':>9} {'throughput':>11} "
          f"{'norm power':>11} {'transitions':>12}")
    print("-" * 64)
    results = {}
    for label, voltage_s, freq_cycles in VARIANTS:
        result = run_variant(voltage_s, freq_cycles)
        results[label] = result
        print(
            f"{label:<16} {result.latency.mean:>9.1f} "
            f"{result.accepted_rate:>11.3f} {result.power.normalized:>11.3f} "
            f"{result.power.transition_count:>12}"
        )

    fast_fast = results["fast V, fast f"]
    slow_slow = results["slow V, slow f"]
    print(
        f"\nFully fast links vs fully slow links: "
        f"{slow_slow.latency.mean / fast_fast.latency.mean:.2f}X the latency, "
        f"power within "
        f"{abs(slow_slow.power.normalized - fast_fast.power.normalized):.3f} "
        "normalized."
    )
    print(
        "The paper's conclusion in miniature: faster transitions track bursty\n"
        "traffic better, and future DVS-link technology improves the whole\n"
        "latency/power trade-off."
    )


if __name__ == "__main__":
    main()
