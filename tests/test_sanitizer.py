"""Network sanitizer: mutation kernels, clean runs, and wiring.

Each mutation test deliberately corrupts one kernel invariant mid-run and
asserts the sanitizer family pinpoints it (the unsorted-dirty-set and
stateful-``next_injection_cycle``-by-lint cases live in ``test_lint.py``).
The clean-run tests pin the other direction: a healthy simulation reports
zero violations and is bit-identical with the sanitizer attached.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    DVSTransitionSanitizer,
    NetworkSanitizer,
    SanitizerViolation,
    TrafficContractSanitizer,
)
from repro.cli import main
from repro.harness.runner import build_simulator
from repro.network.simulator import Simulator
from repro.traffic.base import TrafficSource

from .conftest import small_config


class TestMutationKernels:
    def test_leaked_credit_is_caught(self):
        simulator = Simulator(small_config(rate=0.3), sanitize=True)
        simulator.run_until(300)
        router = simulator.routers[0]
        out_port = router.connected_out[0]
        router.credit_states[out_port].credits[0] -= 1  # the leak
        with pytest.raises(SanitizerViolation) as exc:
            simulator.run_until(330)
        assert exc.value.rule == "credit-conservation"
        assert exc.value.node == 0
        assert exc.value.port == out_port

    def test_double_delivered_flit_is_caught(self):
        config = small_config(rate=0.3)
        simulator = Simulator(config, sanitize=True)
        simulator.run_until(300)
        simulator.routers[4].flits_ejected += config.network.flits_per_packet
        with pytest.raises(SanitizerViolation) as exc:
            simulator.run_until(330)
        assert exc.value.rule == "flit-conservation"

    def test_two_step_dvs_jump_is_caught(self):
        simulator = Simulator(small_config(rate=0.2), sanitize=True)
        simulator.run_until(100)
        dvs = simulator.channels[0].dvs
        assert dvs.level >= 2
        dvs.force_level(dvs.level - 2, simulator.now)  # skips a level
        with pytest.raises(SanitizerViolation) as exc:
            simulator.run_until(130)
        assert exc.value.rule == "dvs-transition"
        assert "multi-step" in str(exc.value)
        assert exc.value.channel == 0

    def test_flit_sent_mid_frequency_transition_is_caught(self):
        # The lock is entered out-of-band (a direct request_level call,
        # not the controller path the checker watches), so catching a
        # mid-lock send exactly needs the every-cycle full scan.
        simulator = Simulator(small_config(rate=0.2))
        simulator.bus.attach(DVSTransitionSanitizer(simulator, check_every=1))
        simulator.run_until(100)
        dvs = simulator.channels[0].dvs
        assert dvs.request_level(dvs.level - 1, simulator.now)
        assert dvs.locked  # downward step begins with the frequency re-lock
        simulator.run_until(102)  # a check records the locked state
        dvs.flits_sent += 1  # "transmit" while the receiver cannot lock
        with pytest.raises(SanitizerViolation) as exc:
            simulator.run_until(130)
        assert exc.value.rule == "link-lockout"

    def test_locked_mirror_desync_is_caught(self):
        simulator = Simulator(small_config(rate=0.2), sanitize=True)
        simulator.run_until(50)
        simulator.channels[0].dvs.locked = True  # phase says STEADY
        with pytest.raises(SanitizerViolation) as exc:
            simulator.run_until(80)
        assert exc.value.rule == "dvs-transition"
        assert "mirror" in str(exc.value)

    def test_vc_marked_free_while_claimed_is_caught(self):
        # A freed-under-claim VC is transient (it heals once the claim
        # releases), so this one needs the every-cycle cadence.
        simulator = Simulator(small_config(rate=0.5))
        NetworkSanitizer(simulator, check_every=1).attach()
        simulator.run_until(300)
        # Find a router currently holding a downstream VC and free it
        # out from under the claim.
        for router in simulator.routers:
            for out_port in router.connected_out:
                state = router.credit_states[out_port]
                for vc, free in enumerate(state.vc_free):
                    if not free:
                        state.vc_free[vc] = True
                        with pytest.raises(SanitizerViolation) as exc:
                            simulator.run_until(simulator.now + 30)
                        assert exc.value.rule == "vc-allocation"
                        return
        pytest.skip("no VC held at the probed cycle")

    def test_stateful_next_injection_cycle_is_caught(self):
        class _StatefulPredictor(TrafficSource):
            def injections(self, now):
                return []

            def next_injection_cycle(self, now):
                # Contract violation: draws from the RNG on every call.
                return now + 1 + self.rng.randrange(8)

        # Checks fire on stepped cycles; a near-zero-rate run would skip
        # almost everything, so step every cycle for this one.
        config = small_config(rate=0.001)
        simulator = Simulator(config, fast_forward=False)
        simulator.traffic = _StatefulPredictor(simulator.topology, config.workload)
        checker = TrafficContractSanitizer(simulator, deep_every=1)
        simulator.bus.attach(checker)
        with pytest.raises(SanitizerViolation) as exc:
            simulator.run_until(50)
        assert exc.value.rule == "traffic-contract"


class TestCleanRun:
    def test_clean_run_zero_violations_and_bit_identical(self):
        config = small_config(rate=0.4, policy="history", warmup=400, measure=1500)
        checked = Simulator(config, sanitize=True)
        result = checked.run()
        assert checked.sanitizer is not None
        assert checked.sanitizer.violations == []
        assert checked.sanitizer.checks > 0

        plain = Simulator(config)
        baseline = plain.run()
        assert plain.sanitizer is None
        assert result == baseline  # bit-identical measurement
        # The sanitizer is skip-safe: fast-forward stays fully enabled.
        assert checked.idle_cycles_skipped == plain.idle_cycles_skipped

    def test_collect_mode_accumulates_instead_of_raising(self):
        simulator = Simulator(small_config(rate=0.3))
        sanitizer = NetworkSanitizer(simulator, raise_on_violation=False).attach()
        simulator.run_until(100)
        simulator.routers[0].flits_ejected += 1
        simulator.run_until(200)
        assert len(sanitizer.violations) > 0
        assert all(v.rule == "flit-conservation" for v in sanitizer.violations)
        assert "violations" in sanitizer.describe()

    def test_attach_detach_roundtrip(self):
        simulator = Simulator(small_config(rate=0.2))
        observers_before = len(simulator.bus)
        sanitizer = NetworkSanitizer(simulator).attach()
        # The bundle registers itself as one fan-out observer.
        assert len(simulator.bus) == observers_before + 1
        assert len(sanitizer.checkers) == 4
        with pytest.raises(Exception):
            sanitizer.attach()  # double attach is an error
        sanitizer.detach()
        assert len(simulator.bus) == observers_before
        with pytest.raises(Exception):
            sanitizer.detach()

    def test_dvs_checker_sees_real_transitions_as_legal(self):
        # A history-policy run exercises ramps and locks; every observed
        # transition must be a legal one-step chain.
        config = small_config(rate=0.8, policy="history", warmup=300, measure=1200)
        simulator = Simulator(config)
        checker = DVSTransitionSanitizer(simulator)
        simulator.bus.attach(checker)
        simulator.run()
        assert checker.violations == []
        assert checker.checks > 0


class TestWiring:
    def test_env_variable_enables_sanitizer(self, monkeypatch):
        config = small_config(rate=0.1, warmup=50, measure=100)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert build_simulator(config).sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "off")
        assert build_simulator(config).sanitizer is None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert build_simulator(config).sanitizer is None

    def test_explicit_flag_overrides_env(self, monkeypatch):
        config = small_config(rate=0.1, warmup=50, measure=100)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert build_simulator(config, sanitize=False).sanitizer is None

    def test_cli_sanitize_flag_reports_summary(self, capsys):
        code = main(["run", "--rate", "0.5", "--scale", "smoke", "--sanitize"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert "0 violations" in out

    def test_cli_without_flag_stays_silent(self, capsys):
        code = main(["run", "--rate", "0.5", "--scale", "smoke"])
        assert code == 0
        assert "sanitizer:" not in capsys.readouterr().out

    def test_violation_context_fields(self):
        violation = SanitizerViolation(
            "credit-conservation", "boom", cycle=7, node=3, port=1, vc=0,
            channel=12,
        )
        text = str(violation)
        assert "[credit-conservation]" in text
        for fragment in ("cycle=7", "node=3", "port=1", "vc=0", "channel=12"):
            assert fragment in text
        assert (violation.cycle, violation.node) == (7, 3)
