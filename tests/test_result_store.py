"""The shared result store: HTTP server, client, cache read-through."""

from __future__ import annotations

import http.client
import pickle
import socket
import threading

import pytest

from repro.harness import cache as cache_mod
from repro.harness.cache import RemoteResultStore, SweepCache
from repro.harness.distributed.store import MAX_ENTRY_BYTES, ResultStoreServer

from .conftest import small_config


@pytest.fixture
def store(tmp_path):
    server = ResultStoreServer(tmp_path / "store")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _key(n: int = 0) -> str:
    return f"{n:064x}"


class TestServer:
    def test_put_get_roundtrip_and_stats(self, store):
        client = RemoteResultStore(store.url)
        assert client.get(_key(1)) is None  # 404 is not an error
        assert client.errors == 0
        assert client.put(_key(1), b"payload-bytes")
        assert client.get(_key(1)) == b"payload-bytes"
        assert client.errors == 0
        assert (store.served, store.stored) == (1, 1)
        assert store.stats() == {"entries": 1, "bytes": len(b"payload-bytes")}

    def test_bad_paths_are_rejected(self, store):
        client = RemoteResultStore(store.url)
        assert client.get("not-a-sha256") is None
        assert client.errors == 1  # 400, unlike a 404 miss, is counted
        assert not client.put("deadbeef", b"x")  # short key
        assert client.errors == 2

    def test_overwrite_is_atomic_and_idempotent(self, store, tmp_path):
        client = RemoteResultStore(store.url)
        assert client.put(_key(2), b"first")
        assert client.put(_key(2), b"second")
        assert client.get(_key(2)) == b"second"
        assert store.stats()["entries"] == 1
        assert not list((tmp_path / "store").glob("**/.tmp-*"))

    def test_torn_upload_never_touches_disk(self, store):
        """A PUT whose body dies mid-transfer is rejected before any
        bytes land on disk — a concurrent reader can never see a tear."""
        host, port = store.server_address[:2]
        sock = socket.create_connection((host, port), timeout=5)
        try:
            head = (
                f"PUT /entry/{_key(3)} HTTP/1.1\r\n"
                f"Host: {host}\r\nContent-Length: 100\r\n\r\n"
            )
            sock.sendall(head.encode("ascii") + b"only-a-few-bytes")
            sock.shutdown(socket.SHUT_WR)  # the "connection died" moment
            response = sock.recv(1024)
        finally:
            sock.close()
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert store.stats()["entries"] == 0
        assert RemoteResultStore(store.url).get(_key(3)) is None

    def test_oversized_upload_is_refused_without_reading_it(self, store):
        host, port = store.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        try:
            connection.putrequest("PUT", f"/entry/{_key(4)}")
            connection.putheader("Content-Length", str(MAX_ENTRY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
        finally:
            connection.close()
        assert store.stats()["entries"] == 0


class TestClientDegradation:
    def test_unreachable_store_degrades_to_local_only(self, tmp_path):
        # Nothing listens on port 1; every operation fails soft.
        client = RemoteResultStore("http://127.0.0.1:1")
        assert client.get(_key(5)) is None
        assert not client.put(_key(5), b"x")
        assert client.errors == 2
        cache = SweepCache(tmp_path / "cache", remote=client)
        config = small_config(rate=0.2, warmup=100, measure=400)
        cache.store(config, "computed")
        assert cache.load(config) == "computed"  # local entry still fine
        assert cache.remote_stores == 0


class TestCacheReadThrough:
    def _config(self, rate: float = 0.2):
        return small_config(rate=rate, warmup=100, measure=400)

    def test_one_hosts_store_is_every_hosts_hit(self, store, tmp_path):
        config = self._config()
        # Host A computes and pushes.
        cache_a = SweepCache(
            tmp_path / "a", remote=RemoteResultStore(store.url)
        )
        cache_a.store(config, "result-bytes")
        assert cache_a.remote_stores == 1
        # Host B (cold local directory) is answered by the shared store
        # and writes the entry through locally.
        cache_b = SweepCache(
            tmp_path / "b", remote=RemoteResultStore(store.url)
        )
        assert cache_b.load(config) == "result-bytes"
        assert cache_b.remote_hits == 1
        assert cache_b.entry_path(config).is_file()  # write-through
        # A third load is purely local.
        served_before = store.served
        assert cache_b.load(config) == "result-bytes"
        assert store.served == served_before
        assert "shared store: 1 hits" in cache_b.describe()

    def test_corrupt_remote_payload_is_ignored_not_written(self, store, tmp_path):
        config = self._config()
        cache = SweepCache(tmp_path / "b", remote=RemoteResultStore(store.url))
        key = cache._key(config.fingerprint())
        assert cache.remote.put(key, b"\x80tornpickle")
        assert cache.load(config) is None
        assert cache.remote.errors == 1
        assert not cache.entry_path(config).exists()  # never written through

    def test_mismatched_fingerprint_is_rejected(self, store, tmp_path):
        config = self._config()
        other = self._config(0.4)
        cache = SweepCache(tmp_path / "b", remote=RemoteResultStore(store.url))
        key = cache._key(config.fingerprint())
        wrong = pickle.dumps(
            {
                "epoch": cache.epoch,
                "fingerprint": other.fingerprint(),
                "result": "stale",
            }
        )
        assert cache.remote.put(key, wrong)
        assert cache.load(config) is None
        assert cache.remote.errors == 1

    def test_cache_from_env_attaches_the_store(self, store, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.CACHE_ENV, str(tmp_path / "env-cache"))
        monkeypatch.setenv(cache_mod.RESULT_STORE_ENV, store.url + "/")
        cache = cache_mod.cache_from_env()
        assert cache is not None and cache.remote is not None
        assert cache.remote.base_url == store.url  # trailing slash stripped
        config = self._config()
        cache.store(config, "via-env")
        fresh = SweepCache(tmp_path / "other", remote=RemoteResultStore(store.url))
        assert fresh.load(config) == "via-env"
