"""repro-lint: the repo stays clean, the fixtures stay caught."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.lint import RULES, Linter, Violation, lint_paths, main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def _lint_source(source: str, path: str) -> list[Violation]:
    linter = Linter(include_fixtures=True)
    linter.add_source(textwrap.dedent(source), path)
    assert linter.errors == []
    return linter.run()


class TestRepoIsClean:
    def test_src_and_tests_have_no_violations(self):
        violations, errors = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert errors == []
        assert violations == []

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert main([str(REPO_ROOT / "src")]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out


class TestFixtureViolations:
    def test_fixture_trips_every_rule_exactly_once(self):
        violations, errors = lint_paths([FIXTURES], include_fixtures=True)
        assert errors == []
        # R6 appears twice: once for the container-allocation flavor
        # (contracts.py) and once for the numpy-temporary flavor
        # (repro/network/batched.py).
        assert sorted(v.rule for v in violations) == sorted(list(RULES) + ["R6"])

    def test_fixtures_excluded_by_default(self):
        violations, errors = lint_paths([FIXTURES])
        assert errors == []
        assert violations == []

    def test_cli_exit_one_on_fixture(self, capsys):
        assert main([str(FIXTURES), "--include-fixtures"]) == 1
        out = capsys.readouterr().out
        assert "violation(s)" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert main([str(FIXTURES), "--include-fixtures", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == []
        assert report["rules"] == RULES
        assert {v["rule"] for v in report["violations"]} == set(RULES)
        for violation in report["violations"]:
            assert violation["name"] == RULES[violation["rule"]]
            assert violation["line"] > 0

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().err


class TestRuleR1:
    def test_global_random_flagged_only_in_simulation_paths(self):
        source = """
            import random

            def pick():
                return random.random()
            """
        assert [v.rule for v in _lint_source(source, "src/repro/traffic/x.py")] == ["R1"]
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_seeded_constructors_and_state_plumbing_allowed(self):
        source = """
            import random

            def build(seed):
                rng = random.Random(seed)
                state = rng.getstate()
                rng.setstate(state)
                return rng
            """
        assert _lint_source(source, "src/repro/traffic/x.py") == []

    def test_numpy_global_flagged_seeded_generator_allowed(self):
        source = """
            import numpy as np

            def bad():
                return np.random.rand()

            def ok(seed):
                return np.random.default_rng(seed)
            """
        violations = _lint_source(source, "src/repro/core/x.py")
        assert [v.rule for v in violations] == ["R1"]
        assert "numpy" in violations[0].message

    def test_wall_clock_flagged(self):
        source = """
            import time

            def stamp():
                return time.monotonic()
            """
        violations = _lint_source(source, "src/repro/network/x.py")
        assert [v.rule for v in violations] == ["R1"]
        assert "wall-clock" in violations[0].message


class TestRuleR2:
    def test_unsorted_dirty_set_iteration_caught(self):
        # The "unsorted dirty-set iteration" mutation kernel: statically
        # caught before it can ever produce a nondeterministic run.
        source = """
            class Engine:
                def __init__(self):
                    self._active: set[int] = set()

                def step(self):
                    for node in self._active:
                        self.routers[node].step()
            """
        violations = _lint_source(source, "src/repro/network/engine.py")
        assert [v.rule for v in violations] == ["R2"]
        assert "sorted" in violations[0].message

    def test_sorted_wrapper_and_other_files_pass(self):
        sorted_source = """
            def step(active: set[int]):
                for node in sorted(active):
                    pass
            """
        assert _lint_source(sorted_source, "src/repro/network/engine.py") == []
        unsorted = """
            def step(active: set[int]):
                for node in active:
                    pass
            """
        # Only the hot-path files are in scope for R2.
        assert _lint_source(unsorted, "src/repro/network/topology.py") == []

    def test_dict_values_iteration_caught(self):
        source = """
            def drain(buckets: dict):
                for bucket in buckets.values():
                    pass
            """
        violations = _lint_source(source, "src/repro/network/router.py")
        assert [v.rule for v in violations] == ["R2"]


class TestRuleR5:
    def test_unions_containers_and_nested_dataclasses_accepted(self):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ThresholdSet:
                low: float = 0.25

            @dataclass(frozen=True)
            class GoodConfig:
                level: int | None = None
                rates: tuple[float, ...] = ()
                names: dict[str, int] | None = None
                thresholds: ThresholdSet = ThresholdSet()
            """
        assert _lint_source(source, "src/repro/config.py") == []

    def test_arbitrary_object_field_rejected(self):
        source = """
            from dataclasses import dataclass
            from typing import Any

            @dataclass
            class BadConfig:
                payload: Any = None
            """
        violations = _lint_source(source, "src/repro/config.py")
        assert [v.rule for v in violations] == ["R5"]
        assert "BadConfig.payload" in violations[0].message


class TestRuleR6:
    def test_literal_in_marked_function_flagged(self):
        source = """
            def drain(events):  # repro-hot
                out = []
                for event in events:
                    out.append(event)
                return out
            """
        violations = _lint_source(source, "src/repro/network/engine.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "list literal" in violations[0].message
        assert "'drain'" in violations[0].message

    def test_marker_on_line_above_also_applies(self):
        source = """
            # repro-hot
            def drain(events):
                return {e: 1 for e in events}
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "dict comprehension" in violations[0].message

    def test_unmarked_function_not_in_scope(self):
        source = """
            def setup(events):
                return [e for e in events]
            """
        assert _lint_source(source, "src/repro/network/engine.py") == []

    def test_constructor_calls_flagged(self):
        source = """
            from collections import deque

            def refill(self):  # repro-hot
                self.queue = deque()
            """
        violations = _lint_source(source, "src/repro/network/x.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "deque() constructor" in violations[0].message

    def test_raise_subtrees_exempt(self):
        source = """
            def check(self, vc):  # repro-hot
                if self.credits[vc] <= 0:
                    raise ValueError(f"underflow: {[vc, self.credits]}")
                self.credits[vc] -= 1
            """
        assert _lint_source(source, "src/repro/network/x.py") == []

    def test_parallel_assignment_exempt_but_rhs_scanned(self):
        clean = """
            def swap(self):  # repro-hot
                self.a, self.b = self.b, self.a
            """
        assert _lint_source(clean, "src/repro/network/x.py") == []
        dirty = """
            def unpack(self):  # repro-hot
                self.a, self.b = self.b, [self.a]
            """
        violations = _lint_source(dirty, "src/repro/network/x.py")
        assert [v.rule for v in violations] == ["R6"]

    def test_store_context_tuple_unpacking_allowed(self):
        source = """
            def step(self, now):  # repro-hot
                (alpha, beta) = self.hot
                for key, value in self.pairs:
                    alpha(key, value, now)
            """
        assert _lint_source(source, "src/repro/network/x.py") == []

    def test_numpy_allocator_flagged(self):
        source = """
            import numpy as np

            def lane(self, raw):  # repro-hot
                mask = np.zeros(raw.shape)
                return mask
            """
        violations = _lint_source(source, "src/repro/network/batched.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "np.zeros" in violations[0].message

    def test_numpy_ufunc_without_out_flagged(self):
        source = """
            import numpy as np

            def lane(self, raw):  # repro-hot
                return np.multiply(self.weight, raw)
            """
        violations = _lint_source(source, "src/repro/network/batched.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "without out=" in violations[0].message

    def test_numpy_ufunc_with_out_clean(self):
        source = """
            import numpy as np

            def lane(self, raw):  # repro-hot
                np.multiply(self.weight, raw, out=self.scratch)
                np.take(self.pred, self.idx, axis=0, out=self.rows)
                return self.scratch
            """
        assert _lint_source(source, "src/repro/network/batched.py") == []

    def test_numpy_in_unmarked_function_ignored(self):
        source = """
            import numpy as np

            def setup(self, shape):
                return np.zeros(shape)
            """
        assert _lint_source(source, "src/repro/network/batched.py") == []


class TestRuleR7:
    BROAD = """
        def attempt(run, config):
            try:
                return run(config)
            except Exception:
                return None
        """

    def test_broad_handler_flagged_only_in_harness_paths(self):
        violations = _lint_source(self.BROAD, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7"]
        assert "except Exception" in violations[0].message
        assert _lint_source(self.BROAD, "src/repro/network/x.py") == []

    def test_interrupt_guard_before_broad_handler_passes(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    return None
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_partial_interrupt_guard_still_flagged(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except KeyboardInterrupt:
                    raise
                except Exception:
                    return None
            """
        # SystemExit is not provably re-raised, so the guard is incomplete.
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7"]

    def test_cleanup_then_reraise_passes(self):
        source = """
            def store(write, undo):
                try:
                    write()
                except BaseException:
                    undo()
                    raise
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_conditional_reraise_does_not_count(self):
        source = """
            def attempt(run, config, strict):
                try:
                    return run(config)
                except BaseException:
                    if strict:
                        raise
                    return None
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7"]

    def test_bare_except_and_tuple_with_exception_flagged(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except (ValueError, Exception):
                    return None

            def attempt2(run, config):
                try:
                    return run(config)
                except:
                    return None
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7", "R7"]
        assert "bare except:" in violations[1].message

    def test_narrow_handlers_not_in_scope(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except (OSError, ValueError):
                    return None
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_real_harness_modules_are_clean(self):
        violations, errors = lint_paths(
            [REPO_ROOT / "src" / "repro" / "harness"]
        )
        assert errors == []
        assert [v for v in violations if v.rule == "R7"] == []


class TestRuleR8:
    """Policy purity: decide() may not touch unseeded randomness, the wall
    clock, or module-level state. Unscoped — applies in every file."""

    def test_unseeded_randomness_in_decide_flagged(self):
        source = """
            import random

            from repro.core.policy import DVSAction, DVSPolicy

            class Flaky(DVSPolicy):
                def decide(self, inputs):
                    return DVSAction(random.choice([-1, 0, 1]))
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        r8 = [v for v in violations if v.rule == "R8"]
        assert len(r8) == 1
        assert "random.choice" in r8[0].message

    def test_seeded_rng_on_self_is_clean(self):
        source = """
            import random

            from repro.core.policy import DVSAction, DVSPolicy

            class Seeded(DVSPolicy):
                def __init__(self):
                    self._rng = random.Random(1)

                def decide(self, inputs):
                    if self._rng.random() < 0.5:
                        return DVSAction.STEP_DOWN
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_wall_clock_in_decide_flagged(self):
        source = """
            import time

            from repro.core.policy import DVSAction, DVSPolicy

            class Clocked(DVSPolicy):
                def decide(self, inputs):
                    if time.time() > 0:
                        return DVSAction.HOLD
                    return DVSAction.STEP_UP
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        r8 = [v for v in violations if v.rule == "R8"]
        assert len(r8) == 1
        assert "wall-clock" in r8[0].message

    def test_global_statement_flagged(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            _CALLS = 0

            class Counting(DVSPolicy):
                def decide(self, inputs):
                    global _CALLS
                    _CALLS = _CALLS + 1
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert any(
            v.rule == "R8" and "global statement" in v.message
            for v in violations
        )

    def test_module_state_mutation_flagged(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            _HISTORY = []
            _LAST = {}

            class Leaky(DVSPolicy):
                def decide(self, inputs):
                    _HISTORY.append(inputs.link_utilization)
                    _LAST["lu"] = inputs.link_utilization
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        r8 = sorted(v.message for v in violations if v.rule == "R8")
        assert len(r8) == 2
        assert any("_HISTORY" in m and "mutation" in m for m in r8)
        assert any("_LAST" in m and "store" in m for m in r8)

    def test_local_shadowing_module_name_is_clean(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            window = 200

            class Shadowing(DVSPolicy):
                def decide(self, inputs):
                    window = [inputs.link_utilization]
                    window.append(inputs.buffer_utilization)
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_self_state_and_helpers_are_clean(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            class Stateful(DVSPolicy):
                def decide(self, inputs):
                    self._ewma = 0.5 * inputs.link_utilization
                    self._seen.append(inputs.window_cycles)
                    return max(DVSAction.HOLD, DVSAction.HOLD)
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_non_policy_class_not_scanned(self):
        source = """
            import random

            class FreeAgent:
                def decide(self, inputs):
                    return random.choice([0, 1])
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_real_policy_modules_are_clean(self):
        violations, errors = lint_paths(
            [REPO_ROOT / "src" / "repro" / "core"]
        )
        assert errors == []
        assert [v for v in violations if v.rule == "R8"] == []


class TestSuppressions:
    def test_inline_ignore_suppresses_only_that_rule(self):
        source = """
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[R1]

            def stamp2():
                return time.time()
            """
        violations = _lint_source(source, "src/repro/network/x.py")
        assert len(violations) == 1
        assert violations[0].line == 8

    def test_skip_file_pragma_disables_the_file(self):
        source = """
            # repro-lint: skip-file
            import time

            def stamp():
                return time.time()
            """
        assert _lint_source(source, "src/repro/network/x.py") == []

    def test_fixture_suppression_example_not_reported(self):
        violations, _ = lint_paths([FIXTURES], include_fixtures=True)
        suppressed_lines = [
            v
            for v in violations
            if "jittered_cycle" in v.message or "random.random" in v.message
        ]
        assert suppressed_lines == []
