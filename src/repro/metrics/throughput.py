"""Throughput and the paper's saturation rule.

"The saturation throughput of the network is where average packet latency
worsens to more than twice the zero-load latency" (Section 4.2). Given a
latency-vs-offered-rate sweep, :func:`saturation_point` finds the first
offered rate whose average latency crosses that threshold, and
:func:`saturation_throughput` reports the *accepted* rate there (the
paper's throughput metric).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..errors import ExperimentError


def saturation_point(
    offered_rates: Sequence[float],
    latencies: Sequence[float],
    zero_load_latency: float,
) -> int:
    """Index of the first sweep point past saturation, or -1 if none.

    Points whose latency is NaN (no packets finished — deep saturation)
    also count as saturated.
    """
    if len(offered_rates) != len(latencies):
        raise ExperimentError("rates and latencies must align")
    if zero_load_latency <= 0.0:
        raise ExperimentError("zero-load latency must be positive")
    threshold = 2.0 * zero_load_latency
    for index, latency in enumerate(latencies):
        if math.isnan(latency) or latency > threshold:
            return index
    return -1


def saturation_throughput(
    offered_rates: Sequence[float],
    accepted_rates: Sequence[float],
    latencies: Sequence[float],
    zero_load_latency: float,
) -> float:
    """Accepted rate at the last pre-saturation point.

    If the sweep never saturates, the highest accepted rate observed is
    returned (a lower bound on the true saturation throughput).
    """
    if len(offered_rates) != len(accepted_rates):
        raise ExperimentError("rates must align")
    index = saturation_point(offered_rates, latencies, zero_load_latency)
    if index == 0:
        raise ExperimentError(
            "network is saturated at the lowest sweep point; sweep lower"
        )
    if index < 0:
        return max(accepted_rates)
    # Accepted throughput keeps rising a little past the latency knee; the
    # paper reads throughput at saturation, which we approximate with the
    # larger of the bracketing points.
    return max(accepted_rates[index - 1], accepted_rates[index])
