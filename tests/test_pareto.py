"""Tests for Pareto sampling and calibration helpers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.traffic.pareto import (
    pareto_location_for_mean,
    pareto_location_for_truncated_mean,
    pareto_mean,
    pareto_sample,
    pareto_truncated_mean,
)


class TestSampling:
    def test_samples_at_least_location(self):
        rng = random.Random(1)
        for _ in range(500):
            assert pareto_sample(rng, 1.4, 10.0) >= 10.0

    def test_sample_mean_near_theory(self):
        rng = random.Random(2)
        shape = 1.8  # variance still infinite but mean converges faster
        location = 5.0
        samples = [pareto_sample(rng, shape, location) for _ in range(200_000)]
        assert sum(samples) / len(samples) == pytest.approx(
            pareto_mean(shape, location), rel=0.1
        )

    def test_heavy_tail_exists(self):
        rng = random.Random(3)
        samples = [pareto_sample(rng, 1.2, 1.0) for _ in range(50_000)]
        assert max(samples) > 100.0  # heavy tail produces large outliers

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(WorkloadError):
            pareto_sample(rng, 0.0, 1.0)
        with pytest.raises(WorkloadError):
            pareto_sample(rng, 1.4, -1.0)


class TestMoments:
    def test_mean_formula(self):
        assert pareto_mean(1.4, 10.0) == pytest.approx(35.0)
        assert pareto_mean(1.2, 6.0) == pytest.approx(36.0)

    def test_mean_requires_shape_above_one(self):
        with pytest.raises(WorkloadError):
            pareto_mean(1.0, 5.0)

    def test_location_for_mean_round_trip(self):
        location = pareto_location_for_mean(1.4, 35.0)
        assert location == pytest.approx(10.0)

    def test_truncated_mean_below_full_mean(self):
        full = pareto_mean(1.2, 10.0)
        truncated = pareto_truncated_mean(1.2, 10.0, 1_000.0)
        assert truncated < full

    def test_truncated_mean_approaches_full(self):
        full = pareto_mean(1.8, 10.0)
        truncated = pareto_truncated_mean(1.8, 10.0, 1.0e9)
        assert truncated == pytest.approx(full, rel=1e-3)

    def test_truncated_mean_caps_at_cap(self):
        assert pareto_truncated_mean(1.4, 10.0, 5.0) == 5.0

    def test_truncated_mean_matches_monte_carlo(self):
        rng = random.Random(4)
        shape, location, cap = 1.2, 20.0, 500.0
        samples = [
            min(pareto_sample(rng, shape, location), cap) for _ in range(200_000)
        ]
        assert sum(samples) / len(samples) == pytest.approx(
            pareto_truncated_mean(shape, location, cap), rel=0.02
        )

    @settings(max_examples=50, deadline=None)
    @given(
        shape=st.floats(min_value=1.1, max_value=1.9),
        mean_frac=st.floats(min_value=0.05, max_value=0.9),
        cap=st.floats(min_value=100.0, max_value=1.0e6),
    )
    def test_location_for_truncated_mean_inverts(self, shape, mean_frac, cap):
        mean = mean_frac * cap
        location = pareto_location_for_truncated_mean(shape, mean, cap)
        assert pareto_truncated_mean(shape, location, cap) == pytest.approx(
            mean, rel=1e-3
        )

    def test_location_for_truncated_mean_validation(self):
        with pytest.raises(WorkloadError):
            pareto_location_for_truncated_mean(1.4, 0.0, 100.0)
        with pytest.raises(WorkloadError):
            pareto_location_for_truncated_mean(1.4, 200.0, 100.0)
