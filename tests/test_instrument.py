"""Tests for the instrumentation bus, observers, and trace recorder."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.instrument import (
    InstrumentBus,
    Observer,
    TraceRecorder,
    TransitionEvent,
)
from repro.network.engine import SimulationEngine
from repro.network.simulator import Simulator

from .conftest import small_config


class CycleCounter(Observer):
    unskippable = True

    def __init__(self):
        self.cycles = 0

    def on_cycle(self, now: int) -> None:
        self.cycles += 1


class WindowCounter(Observer):
    def __init__(self, window_cycles: int):
        self.window_cycles = window_cycles
        self.closes: list[int] = []

    def on_window_close(self, now: int) -> None:
        self.closes.append(now)


class TestBus:
    def test_observer_lands_only_on_overridden_hooks(self):
        bus = InstrumentBus()
        counter = bus.attach(CycleCounter())
        assert bus.cycle_hooks == [counter]
        assert bus.offered_hooks == []
        assert bus.ejected_hooks == []
        assert bus.transition_hooks == []

    def test_double_attach_rejected(self):
        bus = InstrumentBus()
        counter = bus.attach(CycleCounter())
        with pytest.raises(ConfigError):
            bus.attach(counter)

    def test_detach_removes_from_all_hooks(self):
        bus = InstrumentBus()
        counter = bus.attach(CycleCounter())
        bus.detach(counter)
        assert bus.cycle_hooks == []
        assert len(bus) == 0
        with pytest.raises(ConfigError):
            bus.detach(counter)

    def test_window_observer_requires_positive_window(self):
        bus = InstrumentBus()
        with pytest.raises(ConfigError):
            bus.attach(WindowCounter(0))

    def test_no_op_base_observer_attaches_to_nothing(self):
        bus = InstrumentBus()
        bus.attach(Observer())
        assert len(bus) == 1
        assert not bus.cycle_hooks and not bus.window_hooks


class TestEngineDispatch:
    def test_cycle_hook_fires_every_cycle(self):
        engine = SimulationEngine(small_config(rate=0.0))
        counter = engine.bus.attach(CycleCounter())
        engine.run_cycles(250)
        assert counter.cycles == 250

    def test_window_hook_fires_on_multiples_only(self):
        engine = SimulationEngine(small_config(rate=0.0))
        windows = engine.bus.attach(WindowCounter(100))
        engine.run_cycles(350)
        assert windows.closes == [100, 200, 300]

    def test_engine_has_no_measurement_state(self):
        """The kernel must not own any collector — that's the facade's job."""
        engine = SimulationEngine(small_config(rate=0.1))
        for legacy in (
            "latency",
            "accountant",
            "series",
            "probes",
            "total_ejected_packets",
            "offered_measured",
        ):
            assert not hasattr(engine, legacy)
        engine.run_cycles(200)  # runs fine with an empty bus

    def test_offered_and_ejected_hooks_see_packets(self):
        class PacketTap(Observer):
            def __init__(self):
                self.offered = 0
                self.ejected = 0

            def on_packet_offered(self, packet, now):
                self.offered += 1

            def on_packet_ejected(self, packet, now):
                self.ejected += 1

        simulator = Simulator(small_config(rate=0.2))
        tap = simulator.bus.attach(PacketTap())
        simulator.run()
        simulator.drain()
        assert tap.offered > 0
        assert tap.ejected == tap.offered


class TestTraceRecorder:
    def test_captures_every_transition_the_accountant_counts(self):
        """Acceptance: trace ramp starts == PowerAccountant transitions."""
        config = small_config(
            policy="history",
            rate=0.25,
            workload_kind="two_level",
            warmup=0,
            measure=3_000,
            average_tasks=4,
            average_task_duration_s=3.0e-6,
            onoff_sources_per_task=4,
        )
        simulator = Simulator(config)
        recorder = simulator.bus.attach(TraceRecorder())
        result = simulator.run()
        assert result.power.transition_count > 0
        assert len(recorder.ramp_starts()) == result.power.transition_count
        assert simulator._power_observer.ramp_starts_seen == (
            result.power.transition_count
        )

    def test_trace_attaches_without_modifying_engine(self):
        """The seam proof: an engine field-for-field identical run, with and
        without a recorder attached, produces the same result."""
        bare = Simulator(small_config(policy="history", rate=0.3)).run()
        traced_sim = Simulator(small_config(policy="history", rate=0.3))
        traced_sim.bus.attach(TraceRecorder())
        traced = traced_sim.run()
        assert bare == traced

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = small_config(
            policy="history", rate=0.3, warmup=200, measure=1_000
        )
        with TraceRecorder(path) as recorder:
            simulator = Simulator(config)
            simulator.bus.attach(recorder)
            simulator.run()
        records = TraceRecorder.read(path)
        assert records == recorder.records
        kinds = {r["kind"] for r in records if r["event"] == "transition"}
        assert kinds <= {"ramp_start", "phase_end"}
        labels = [r["label"] for r in records if r["event"] == "mark"]
        assert labels == ["measurement_begin", "measurement_end"]
        for line in path.read_text().splitlines():
            json.loads(line)  # every line is standalone JSON

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(path)
        recorder.on_mark("only", 1)
        recorder.close()
        recorder.on_mark("late", 2)
        recorder.close()
        assert len(TraceRecorder.read(path)) == 1

    def test_transition_events_carry_channel_ids(self):
        simulator = Simulator(small_config(policy="history", rate=0.4))
        recorder = simulator.bus.attach(TraceRecorder())
        simulator.run()
        valid_ids = {channel.spec.channel_id for channel in simulator.channels}
        channels_seen = {r["channel"] for r in recorder.ramp_starts()}
        assert channels_seen
        assert channels_seen <= valid_ids


class TestSeriesWithDVS:
    def test_series_window_with_active_policy_does_not_crash(self):
        """Regression: series finalize used to raise LinkStateError when a
        window boundary landed inside a transition's pre-billed span."""
        config = small_config(
            policy="history",
            rate=0.3,
            workload_kind="two_level",
            average_tasks=4,
            average_task_duration_s=3.0e-6,
            onoff_sources_per_task=4,
        )
        result = Simulator(config, series_window=500).run()
        assert result.power.transition_count > 0
        assert len(result.series["power_w"]) == 4
        assert all(p >= 0.0 for p in result.series["power_w"].values)


def test_transition_event_is_frozen():
    event = TransitionEvent(
        cycle=1,
        channel=2,
        kind="ramp_start",
        phase="voltage_ramp",
        level=3,
        voltage_level=4,
        target_level=3,
    )
    with pytest.raises(AttributeError):
        event.cycle = 5
