"""Incremental result cache for the static-analysis framework.

The cache stores, per linted file, the SHA-256 of its bytes and the
per-file rule findings (R1–R8) computed from it, plus one whole-project
digest covering every file in the run. Two levels of reuse fall out:

* **Project short-circuit** — when the project digest matches, the
  previous run's complete results (including the interprocedural
  R9–R11 findings) are returned without parsing anything. This is the
  no-change pre-commit case: near-instant.
* **Per-file reuse** — when some files changed, every file is still
  *parsed* (the interprocedural passes need the whole project model and
  re-run unconditionally — their findings in one file can change because
  a different file changed), but per-file rule evaluation is skipped for
  files whose SHA matches.

The cache file is plain JSON, safe to delete at any time, and versioned:
a version bump (any change to rule semantics) invalidates it wholesale.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .model import Violation

#: Bump when rule semantics or the cache layout change.
CACHE_VERSION = 1

#: Default cache path, relative to the working directory.
DEFAULT_CACHE = ".repro-lint-cache.json"


def file_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def project_digest(shas: dict[str, str]) -> str:
    """Order-independent digest of the whole file set."""
    digest = hashlib.sha256()
    for path in sorted(shas):
        digest.update(path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(shas[path].encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _violation_to_json(violation: Violation) -> dict[str, object]:
    return {
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "rule": violation.rule,
        "message": violation.message,
    }


def _violation_from_json(raw: dict[str, object]) -> Violation:
    return Violation(
        path=str(raw["path"]),
        line=int(raw["line"]),  # type: ignore[arg-type]
        col=int(raw["col"]),  # type: ignore[arg-type]
        rule=str(raw["rule"]),
        message=str(raw["message"]),
    )


class LintCache:
    """Load/store for the incremental cache file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._payload: dict[str, object] = {}
        self.loaded = False

    def load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (
            isinstance(payload, dict)
            and payload.get("version") == CACHE_VERSION
            and isinstance(payload.get("files"), dict)
        ):
            self._payload = payload
            self.loaded = True

    # -- reads -------------------------------------------------------------

    def project_result(
        self, digest: str
    ) -> tuple[list[Violation], dict[str, int], list[str]] | None:
        """``(violations, suppressed-counts, warnings)`` from the previous
        run if the whole project is unchanged."""
        if not self.loaded or self._payload.get("project_digest") != digest:
            return None
        raw = self._payload.get("project_violations")
        if not isinstance(raw, list):
            return None
        suppressed_raw = self._payload.get("suppressed")
        warnings_raw = self._payload.get("warnings")
        try:
            violations = [_violation_from_json(item) for item in raw]
            suppressed = {
                str(rule): int(count)  # type: ignore[arg-type]
                for rule, count in (
                    suppressed_raw.items()
                    if isinstance(suppressed_raw, dict)
                    else ()
                )
            }
            warnings = [
                str(item)
                for item in (
                    warnings_raw if isinstance(warnings_raw, list) else ()
                )
            ]
        except (KeyError, TypeError, ValueError):
            return None
        return violations, suppressed, warnings

    def file_result(self, path: str, sha: str) -> list[Violation] | None:
        """Per-file (R1–R8) findings if *path* is unchanged."""
        files = self._payload.get("files")
        if not isinstance(files, dict):
            return None
        entry = files.get(path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        raw = entry.get("violations")
        if not isinstance(raw, list):
            return None
        try:
            return [_violation_from_json(item) for item in raw]
        except (KeyError, TypeError, ValueError):
            return None

    # -- writes ------------------------------------------------------------

    def store(
        self,
        shas: dict[str, str],
        per_file: dict[str, list[Violation]],
        project_violations: list[Violation],
        suppressed: dict[str, int] | None = None,
        warnings: list[str] | None = None,
    ) -> None:
        self._payload = {
            "version": CACHE_VERSION,
            "project_digest": project_digest(shas),
            "project_violations": [
                _violation_to_json(v) for v in project_violations
            ],
            "suppressed": dict(suppressed or {}),
            "warnings": list(warnings or []),
            "files": {
                path: {
                    "sha": shas[path],
                    "violations": [
                        _violation_to_json(v) for v in per_file.get(path, [])
                    ],
                }
                for path in shas
            },
        }

    def save(self) -> None:
        try:
            self.path.write_text(
                json.dumps(self._payload, indent=1) + "\n", encoding="utf-8"
            )
        except OSError:
            # A read-only checkout degrades to uncached, not to failure.
            pass
