"""Content-addressed on-disk memoization of sweep simulation results.

A simulation is fully described by its (frozen, picklable)
:class:`~repro.config.SimulationConfig` — the workload seed included — so
its :class:`~repro.network.simulator.SimulationResult` can be cached on
disk and reused across processes and sessions. Every execution backend
(:mod:`repro.harness.backends`) consults the cache transparently: a sweep
re-run only simulates points it has never seen.

Key construction
    ``sha256(code_epoch + "\\n" + config.fingerprint())`` where the
    fingerprint is the config's canonical JSON (sorted keys, fixed
    separators — see :func:`~repro.harness.serialization.canonical_json`)
    and :data:`CODE_EPOCH` names the current simulated semantics. Bump
    the epoch whenever a change alters simulation output for the same
    config; old entries are simply never looked up again.

Safety
    Entries verify their stored fingerprint on load (hash collisions and
    stale schema both degrade to a miss), corrupt or unreadable files are
    misses, and writes go through a temp file + ``os.replace`` so
    concurrent sweep processes never observe a torn entry. Store failures
    are swallowed: a read-only cache directory slows a sweep down, it
    never breaks one.

Escape hatches
    ``REPRO_CACHE=off`` (also ``0``/``no``/``none``/``disabled``)
    disables caching; any other non-empty value is used as the cache
    directory; unset picks ``$XDG_CACHE_HOME/repro/sweeps`` (falling back
    to ``~/.cache``). The CLI's ``--no-cache`` flag and tests use
    :func:`set_cache` to override programmatically.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..config import SimulationConfig
from ..errors import ExperimentError

#: Environment variable controlling the cache location (or disabling it).
CACHE_ENV = "REPRO_CACHE"

#: Name of the current simulated semantics. Bump on any change that
#: alters simulation output for an unchanged config.
CODE_EPOCH = "pr2-event-horizon"

_DISABLE_VALUES = frozenset({"0", "off", "no", "none", "disabled", "false"})


class SweepCache:
    """One on-disk result store plus in-process hit/miss counters."""

    def __init__(self, root: str | Path, *, epoch: str = CODE_EPOCH) -> None:
        self.root = Path(root).expanduser()
        self.epoch = epoch
        self.hits = 0
        self.misses = 0

    # -- keys ------------------------------------------------------------

    def _key(self, fingerprint: str) -> str:
        digest = hashlib.sha256()
        digest.update(self.epoch.encode("utf-8"))
        digest.update(b"\n")
        digest.update(fingerprint.encode("utf-8"))
        return digest.hexdigest()

    def _path(self, fingerprint: str) -> Path:
        key = self._key(fingerprint)
        return self.root / self.epoch / key[:2] / f"{key}.pkl"

    def entry_path(self, config: SimulationConfig) -> Path:
        """Where *config*'s result lives (whether or not it exists yet)."""
        return self._path(config.fingerprint())

    # -- single-entry operations ----------------------------------------

    def load(self, config: SimulationConfig) -> object | None:
        """The cached result for *config*, or ``None`` on any miss."""
        fingerprint = config.fingerprint()
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(entry, dict) or entry.get("fingerprint") != fingerprint:
            return None
        return entry.get("result")

    def store(self, config: SimulationConfig, result: object) -> None:
        """Persist *result* for *config*; best-effort (never raises OSError)."""
        payload = pickle.dumps(
            {
                "epoch": self.epoch,
                "fingerprint": config.fingerprint(),
                "result": result,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = self.entry_path(config)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    # -- batch operation (the backend entry point) -----------------------

    def map_cached(
        self,
        configs: Sequence[SimulationConfig],
        run_batch: Callable[[list[SimulationConfig]], Iterable],
    ) -> list:
        """Results for *configs* in order, computing only the misses.

        *run_batch* receives the missing configs (input order preserved)
        and must return one result per config; freshly computed results
        are stored before returning.
        """
        configs = list(configs)
        results: list = [None] * len(configs)
        miss_indices: list[int] = []
        miss_configs: list[SimulationConfig] = []
        for index, config in enumerate(configs):
            cached = self.load(config)
            if cached is None:
                self.misses += 1
                miss_indices.append(index)
                miss_configs.append(config)
            else:
                self.hits += 1
                results[index] = cached
        if miss_configs:
            computed = list(run_batch(miss_configs))
            if len(computed) != len(miss_configs):
                raise ExperimentError(
                    f"backend returned {len(computed)} results for "
                    f"{len(miss_configs)} configs"
                )
            for index, config, result in zip(miss_indices, miss_configs, computed):
                self.store(config, result)
                results[index] = result
        return results

    def describe(self) -> str:
        """One-line human summary for sweep output."""
        return f"{self.hits} hits, {self.misses} misses ({self.root})"

    def __repr__(self) -> str:
        return f"SweepCache(root={str(self.root)!r}, epoch={self.epoch!r})"


# ---------------------------------------------------------------------------
# Process-wide selection
# ---------------------------------------------------------------------------

_UNSET = object()
#: Explicit override installed by set_cache(); _UNSET defers to the env.
_override = _UNSET
#: Root path -> instance, so hit/miss counters accumulate per process.
_instances: dict[str, SweepCache] = {}


def default_cache_root() -> Path:
    """``$XDG_CACHE_HOME/repro/sweeps``, falling back to ``~/.cache``."""
    base = os.environ.get("XDG_CACHE_HOME", "").strip()
    root = Path(base).expanduser() if base else Path("~/.cache").expanduser()
    return root / "repro" / "sweeps"


def cache_from_env() -> SweepCache | None:
    """The cache selected by ``REPRO_CACHE`` (``None`` when disabled)."""
    raw = os.environ.get(CACHE_ENV, "").strip()
    if raw.lower() in _DISABLE_VALUES:
        return None
    root = Path(raw).expanduser() if raw else default_cache_root()
    key = str(root)
    cache = _instances.get(key)
    if cache is None:
        cache = _instances[key] = SweepCache(root)
    return cache


def get_cache() -> SweepCache | None:
    """The active sweep cache: the override if set, else the environment."""
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    return cache_from_env()


def set_cache(cache: SweepCache | None) -> None:
    """Install an explicit cache (or ``None`` to disable caching)."""
    global _override
    _override = cache


def reset_cache() -> None:
    """Drop any explicit override; revert to environment selection."""
    global _override
    _override = _UNSET
