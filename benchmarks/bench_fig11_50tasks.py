"""Figure 11: the Figure 10 comparison with 50 task sessions.

Paper shape: similar savings to the 100-task case (paper: up to 6.4X,
4.9X average), with throughput a notch lower than the 100-task workload
because traffic is more imbalanced.
"""

from repro.harness.experiments import fig11_dvs_vs_nodvs_50tasks

from .common import cached_fig10, emit, run_once, scale


def test_fig11_dvs_vs_nodvs_50tasks(benchmark):
    figure = run_once(benchmark, lambda: fig11_dvs_vs_nodvs_50tasks(scale()))
    emit("fig11_50tasks", figure)
    summary = figure.extras["summary"]
    print(f"\nFigure 11 summary: {summary.describe()}")
    assert summary.max_savings > 2.5
    assert summary.average_savings > 2.0


def test_fig11_more_imbalanced_than_fig10(benchmark):
    """50 concurrent sessions concentrate load more than 100 (paper's
    explanation for the lower throughput)."""
    fig11 = run_once(benchmark, lambda: fig11_dvs_vs_nodvs_50tasks(scale()))
    fig10 = cached_fig10(scale().name)
    top_rate_row_11 = fig11.rows[-1]
    top_rate_row_10 = fig10.rows[-1]
    # Accepted baseline throughput at the top offered rate: 50 tasks should
    # not exceed 100 tasks by much (imbalance hurts or is neutral).
    assert top_rate_row_11[4] <= top_rate_row_10[4] * 1.15
