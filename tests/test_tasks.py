"""Tests for the two-level task workload."""

import pytest

from repro.config import WorkloadConfig
from repro.network.topology import Topology
from repro.traffic.tasks import TwoLevelWorkload


def make_workload(**overrides):
    params = dict(
        kind="two_level",
        injection_rate=0.5,
        average_tasks=20,
        average_task_duration_s=10.0e-6,
        onoff_sources_per_task=8,
        seed=7,
    )
    params.update(overrides)
    topology = Topology(4, 2)
    return TwoLevelWorkload(topology, WorkloadConfig(**params))


class TestSessions:
    def test_primed_to_target_concurrency(self):
        workload = make_workload()
        assert workload.tasks_started == 20

    def test_concurrency_hovers_near_target(self):
        workload = make_workload()
        for now in range(30_000):
            workload.injections(now)
        assert 8 <= workload.live_sessions <= 40

    def test_arrival_rate_from_littles_law(self):
        workload = make_workload()
        assert workload.task_arrival_rate == pytest.approx(20 / 10_000)

    def test_sessions_respect_topology(self):
        workload = make_workload()
        for now in range(5_000):
            for src, dst in workload.injections(now):
                assert 0 <= src < 16
                assert 0 <= dst < 16
                assert src != dst

    def test_offered_rate_within_tolerance(self):
        totals = []
        for seed in range(5):
            workload = make_workload(seed=seed)
            count = 0
            for now in range(40_000):
                count += len(workload.injections(now))
            totals.append(count / 40_000)
        mean = sum(totals) / len(totals)
        assert mean == pytest.approx(0.5, rel=0.35)

    def test_monotone_time_assumption(self):
        workload = make_workload()
        workload.injections(10)
        workload.injections(11)  # strictly increasing is fine
        # (The source does not support rewinding; no assertion needed —
        # just verifying no state corruption on consecutive calls.)
        assert workload.packets_offered >= 0


class TestSpatialStructure:
    def test_pairs_are_persistent_flows(self):
        """Within a horizon, traffic concentrates on session pairs rather
        than spraying uniformly."""
        workload = make_workload(average_tasks=5, injection_rate=1.0)
        pairs = set()
        count = 0
        for now in range(10_000):
            for pair in workload.injections(now):
                pairs.add(pair)
                count += 1
        assert count > 50
        # 5-ish concurrent sessions plus churn: far fewer distinct pairs
        # than packets.
        assert len(pairs) < count / 3

    def test_spatial_snapshot_shape(self):
        workload = make_workload()
        snapshot = workload.spatial_snapshot([(0, 1), (0, 2), (5, 1)])
        assert snapshot[0] == 2
        assert snapshot[5] == 1
        assert len(snapshot) == 16


class TestValidation:
    def test_zero_rate_rejected(self):
        with pytest.raises(Exception):
            make_workload(injection_rate=0.0)

    def test_subcycle_duration_rejected(self):
        from repro.errors import WorkloadError

        topology = Topology(4, 2)
        config = WorkloadConfig(
            kind="two_level",
            injection_rate=0.5,
            average_task_duration_s=1.0e-6,
        )
        with pytest.raises(WorkloadError):
            TwoLevelWorkload(topology, config, router_clock_hz=1.0e5)
