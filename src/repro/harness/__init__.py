"""Experiment harness: per-figure reproductions of the paper's evaluation.

Every table and figure in the paper's Section 4 has a function in
:mod:`repro.harness.experiments` that regenerates it (workload, sweep,
baseline and the reported rows/series), at a configurable scale
(:class:`~repro.harness.scales.ExperimentScale`). ``benchmarks/`` wraps
each one in a pytest-benchmark target.
"""

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_backend,
    make_backend,
)
from .chaos import ChaosPlan
from .resilience import FailureReport, PointFailure, RetryPolicy, run_point
from .runner import build_simulator, run_simulation
from .scales import DEFAULT_SCALE, PAPER_SCALE, SMOKE_SCALE, ExperimentScale, get_scale
from .serialization import to_json, write_json
from .sweep import (
    SweepPoint,
    compare_policies,
    named_sweeps,
    rate_sweep,
    resume_preview,
    zero_load_latency,
)
from .tables import render_table

__all__ = [
    "build_simulator",
    "run_simulation",
    "run_point",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "default_backend",
    "RetryPolicy",
    "PointFailure",
    "FailureReport",
    "ChaosPlan",
    "ExperimentScale",
    "SMOKE_SCALE",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "get_scale",
    "SweepPoint",
    "rate_sweep",
    "compare_policies",
    "named_sweeps",
    "resume_preview",
    "zero_load_latency",
    "render_table",
    "to_json",
    "write_json",
]
