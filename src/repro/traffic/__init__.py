"""Workload models (paper Section 4.3).

The centerpiece is the two-level task workload
(:class:`~repro.traffic.tasks.TwoLevelWorkload`): Poisson-arriving
communication task sessions placed with a sphere of locality, each
generating self-similar packet traffic by multiplexing Pareto ON/OFF
sources. Classic reference workloads (uniform random, permutations) and
validation tooling (Hurst-exponent estimators, trace record/replay) live
alongside.
"""

from .base import TrafficSource, make_traffic
from .hotspot import HotspotTraffic
from .locality import SphereOfLocality
from .onoff import OnOffSourceSet
from .pareto import pareto_mean, pareto_sample
from .permutation import PERMUTATIONS, PermutationTraffic
from .selfsim import hurst_rs, hurst_variance_time
from .tasks import TwoLevelWorkload
from .trace import RecordingSource, TraceReplaySource
from .uniform import UniformRandomTraffic

__all__ = [
    "TrafficSource",
    "make_traffic",
    "pareto_sample",
    "pareto_mean",
    "OnOffSourceSet",
    "SphereOfLocality",
    "TwoLevelWorkload",
    "UniformRandomTraffic",
    "PermutationTraffic",
    "HotspotTraffic",
    "PERMUTATIONS",
    "hurst_rs",
    "hurst_variance_time",
    "RecordingSource",
    "TraceReplaySource",
]
