"""repro-lint: the repo stays clean, the fixtures stay caught."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import baseline as baseline_io
from repro.analysis.lint import RULES, Linter, Violation, lint_paths, main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"


def _lint_source(source: str, path: str) -> list[Violation]:
    linter = Linter(include_fixtures=True)
    linter.add_source(textwrap.dedent(source), path)
    assert linter.errors == []
    return linter.run()


def _lint_sources(sources: dict[str, str]) -> list[Violation]:
    """Lint several in-memory modules as one project model."""
    linter = Linter(include_fixtures=True)
    for path, source in sources.items():
        linter.add_source(textwrap.dedent(source), path)
    assert linter.errors == []
    return linter.run()


class TestRepoIsClean:
    def test_src_and_tests_have_no_violations(self):
        # Pre-existing interprocedural findings live in the committed
        # baseline (each with a reviewed justification); anything NOT in
        # the baseline fails this test.
        violations, errors = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], baseline=BASELINE
        )
        assert errors == []
        assert violations == []

    def test_baseline_is_fully_justified_and_live(self):
        entries = baseline_io.load(BASELINE)
        assert entries, "baseline exists but is empty; delete it instead"
        for entry in entries:
            justification = str(entry.get("justification", ""))
            assert justification
            assert justification != baseline_io.TODO_JUSTIFICATION, entry
        # Every entry still matches a real finding (no stale rot).
        linter = Linter()
        linter.add_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        violations = linter.run()
        _, matched, stale = baseline_io.apply(
            violations, entries, linter.source_line
        )
        assert stale == []
        assert len(matched) == len(entries)

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert main([str(REPO_ROOT / "src"), "--baseline", str(BASELINE)]) == 0
        out = capsys.readouterr().out
        assert "repro-lint: clean" in out
        assert "baseline finding(s)" in out


class TestFixtureViolations:
    def test_fixture_trips_every_rule_exactly_once(self):
        violations, errors = lint_paths([FIXTURES], include_fixtures=True)
        assert errors == []
        # R6 appears three times: the container-allocation flavor
        # (contracts.py), the numpy-temporary flavor
        # (repro/network/batched.py), and the deepcopy flavor
        # (repro/network/splitter.py).
        assert sorted(v.rule for v in violations) == sorted(
            list(RULES) + ["R6", "R6"]
        )

    def test_fixtures_excluded_by_default(self):
        violations, errors = lint_paths([FIXTURES])
        assert errors == []
        assert violations == []

    def test_cli_exit_one_on_fixture(self, capsys):
        assert main([str(FIXTURES), "--include-fixtures", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "violation(s)" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert (
            main(
                [
                    str(FIXTURES),
                    "--include-fixtures",
                    "--no-baseline",
                    "--format",
                    "json",
                ]
            )
            == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == []
        assert report["rules"] == RULES
        assert {v["rule"] for v in report["violations"]} == set(RULES)
        for violation in report["violations"]:
            assert violation["name"] == RULES[violation["rule"]]
            assert violation["line"] > 0
        # Suppressed fixture examples are tallied per rule, not dropped
        # silently; every rule with a suppression example shows up.
        for rule in ("R1", "R7", "R8", "R9", "R10", "R11"):
            assert report["suppressions"].get(rule, 0) >= 1
        assert report["baseline"] == {"path": None, "matched": 0, "stale": []}

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().err


class TestRuleR1:
    def test_global_random_flagged_only_in_simulation_paths(self):
        source = """
            import random

            def pick():
                return random.random()
            """
        assert [v.rule for v in _lint_source(source, "src/repro/traffic/x.py")] == ["R1"]
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_seeded_constructors_and_state_plumbing_allowed(self):
        source = """
            import random

            def build(seed):
                rng = random.Random(seed)
                state = rng.getstate()
                rng.setstate(state)
                return rng
            """
        assert _lint_source(source, "src/repro/traffic/x.py") == []

    def test_numpy_global_flagged_seeded_generator_allowed(self):
        source = """
            import numpy as np

            def bad():
                return np.random.rand()

            def ok(seed):
                return np.random.default_rng(seed)
            """
        violations = _lint_source(source, "src/repro/core/x.py")
        assert [v.rule for v in violations] == ["R1"]
        assert "numpy" in violations[0].message

    def test_wall_clock_flagged(self):
        source = """
            import time

            def stamp():
                return time.monotonic()
            """
        violations = _lint_source(source, "src/repro/network/x.py")
        assert [v.rule for v in violations] == ["R1"]
        assert "wall-clock" in violations[0].message


class TestRuleR2:
    def test_unsorted_dirty_set_iteration_caught(self):
        # The "unsorted dirty-set iteration" mutation kernel: statically
        # caught before it can ever produce a nondeterministic run.
        source = """
            class Engine:
                def __init__(self):
                    self._active: set[int] = set()

                def step(self):
                    for node in self._active:
                        self.routers[node].step()
            """
        violations = _lint_source(source, "src/repro/network/engine.py")
        assert [v.rule for v in violations] == ["R2"]
        assert "sorted" in violations[0].message

    def test_sorted_wrapper_and_other_files_pass(self):
        sorted_source = """
            def step(active: set[int]):
                for node in sorted(active):
                    pass
            """
        assert _lint_source(sorted_source, "src/repro/network/engine.py") == []
        unsorted = """
            def step(active: set[int]):
                for node in active:
                    pass
            """
        # Only the hot-path files are in scope for R2.
        assert _lint_source(unsorted, "src/repro/network/topology.py") == []

    def test_dict_values_iteration_caught(self):
        source = """
            def drain(buckets: dict):
                for bucket in buckets.values():
                    pass
            """
        violations = _lint_source(source, "src/repro/network/router.py")
        assert [v.rule for v in violations] == ["R2"]


class TestRuleR5:
    def test_unions_containers_and_nested_dataclasses_accepted(self):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ThresholdSet:
                low: float = 0.25

            @dataclass(frozen=True)
            class GoodConfig:
                level: int | None = None
                rates: tuple[float, ...] = ()
                names: dict[str, int] | None = None
                thresholds: ThresholdSet = ThresholdSet()
            """
        assert _lint_source(source, "src/repro/config.py") == []

    def test_arbitrary_object_field_rejected(self):
        source = """
            from dataclasses import dataclass
            from typing import Any

            @dataclass
            class BadConfig:
                payload: Any = None
            """
        violations = _lint_source(source, "src/repro/config.py")
        assert [v.rule for v in violations] == ["R5"]
        assert "BadConfig.payload" in violations[0].message


class TestRuleR6:
    def test_literal_in_marked_function_flagged(self):
        source = """
            def drain(events):  # repro-hot
                out = []
                for event in events:
                    out.append(event)
                return out
            """
        violations = _lint_source(source, "src/repro/network/engine.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "list literal" in violations[0].message
        assert "'drain'" in violations[0].message

    def test_marker_on_line_above_also_applies(self):
        source = """
            # repro-hot
            def drain(events):
                return {e: 1 for e in events}
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "dict comprehension" in violations[0].message

    def test_unmarked_function_not_in_scope(self):
        source = """
            def setup(events):
                return [e for e in events]
            """
        assert _lint_source(source, "src/repro/network/engine.py") == []

    def test_constructor_calls_flagged(self):
        source = """
            from collections import deque

            def refill(self):  # repro-hot
                self.queue = deque()
            """
        violations = _lint_source(source, "src/repro/network/x.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "deque() constructor" in violations[0].message

    def test_raise_subtrees_exempt(self):
        source = """
            def check(self, vc):  # repro-hot
                if self.credits[vc] <= 0:
                    raise ValueError(f"underflow: {[vc, self.credits]}")
                self.credits[vc] -= 1
            """
        assert _lint_source(source, "src/repro/network/x.py") == []

    def test_parallel_assignment_exempt_but_rhs_scanned(self):
        clean = """
            def swap(self):  # repro-hot
                self.a, self.b = self.b, self.a
            """
        assert _lint_source(clean, "src/repro/network/x.py") == []
        dirty = """
            def unpack(self):  # repro-hot
                self.a, self.b = self.b, [self.a]
            """
        violations = _lint_source(dirty, "src/repro/network/x.py")
        assert [v.rule for v in violations] == ["R6"]

    def test_store_context_tuple_unpacking_allowed(self):
        source = """
            def step(self, now):  # repro-hot
                (alpha, beta) = self.hot
                for key, value in self.pairs:
                    alpha(key, value, now)
            """
        assert _lint_source(source, "src/repro/network/x.py") == []

    def test_numpy_allocator_flagged(self):
        source = """
            import numpy as np

            def lane(self, raw):  # repro-hot
                mask = np.zeros(raw.shape)
                return mask
            """
        violations = _lint_source(source, "src/repro/network/batched.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "np.zeros" in violations[0].message

    def test_numpy_ufunc_without_out_flagged(self):
        source = """
            import numpy as np

            def lane(self, raw):  # repro-hot
                return np.multiply(self.weight, raw)
            """
        violations = _lint_source(source, "src/repro/network/batched.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "without out=" in violations[0].message

    def test_numpy_ufunc_with_out_clean(self):
        source = """
            import numpy as np

            def lane(self, raw):  # repro-hot
                np.multiply(self.weight, raw, out=self.scratch)
                np.take(self.pred, self.idx, axis=0, out=self.rows)
                return self.scratch
            """
        assert _lint_source(source, "src/repro/network/batched.py") == []

    def test_deepcopy_flagged_with_snapshot_advice(self):
        source = """
            import copy

            def split(self, members):  # repro-hot
                clone = copy.deepcopy(self.engine)
                return clone
            """
        violations = _lint_source(source, "src/repro/network/batched.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "copy.deepcopy()" in violations[0].message
        assert "fast_clone" in violations[0].message
        assert "'split'" in violations[0].message

    def test_bare_deepcopy_name_also_flagged(self):
        source = """
            from copy import deepcopy

            def split(self, members):  # repro-hot
                return deepcopy(self.engine)
            """
        violations = _lint_source(source, "src/repro/network/batched.py")
        assert [v.rule for v in violations] == ["R6"]
        assert "copy.deepcopy()" in violations[0].message

    def test_deepcopy_in_unmarked_function_ignored(self):
        source = """
            import copy

            def setup(self):
                return copy.deepcopy(self.engine)
            """
        assert _lint_source(source, "src/repro/network/batched.py") == []

    def test_shallow_copy_not_flagged(self):
        source = """
            import copy

            def split(self, members):  # repro-hot
                self.cursor = copy.copy(self.cursor)
            """
        assert _lint_source(source, "src/repro/network/batched.py") == []

    def test_numpy_in_unmarked_function_ignored(self):
        source = """
            import numpy as np

            def setup(self, shape):
                return np.zeros(shape)
            """
        assert _lint_source(source, "src/repro/network/batched.py") == []


class TestRuleR7:
    BROAD = """
        def attempt(run, config):
            try:
                return run(config)
            except Exception:
                return None
        """

    def test_broad_handler_flagged_only_in_harness_paths(self):
        violations = _lint_source(self.BROAD, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7"]
        assert "except Exception" in violations[0].message
        assert _lint_source(self.BROAD, "src/repro/network/x.py") == []

    def test_interrupt_guard_before_broad_handler_passes(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    return None
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_partial_interrupt_guard_still_flagged(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except KeyboardInterrupt:
                    raise
                except Exception:
                    return None
            """
        # SystemExit is not provably re-raised, so the guard is incomplete.
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7"]

    def test_cleanup_then_reraise_passes(self):
        source = """
            def store(write, undo):
                try:
                    write()
                except BaseException:
                    undo()
                    raise
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_conditional_reraise_does_not_count(self):
        source = """
            def attempt(run, config, strict):
                try:
                    return run(config)
                except BaseException:
                    if strict:
                        raise
                    return None
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7"]

    def test_bare_except_and_tuple_with_exception_flagged(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except (ValueError, Exception):
                    return None

            def attempt2(run, config):
                try:
                    return run(config)
                except:
                    return None
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R7", "R7"]
        assert "bare except:" in violations[1].message

    def test_narrow_handlers_not_in_scope(self):
        source = """
            def attempt(run, config):
                try:
                    return run(config)
                except (OSError, ValueError):
                    return None
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_real_harness_modules_are_clean(self):
        violations, errors = lint_paths(
            [REPO_ROOT / "src" / "repro" / "harness"]
        )
        assert errors == []
        assert [v for v in violations if v.rule == "R7"] == []


class TestRuleR8:
    """Policy purity: decide() may not touch unseeded randomness, the wall
    clock, or module-level state. Unscoped — applies in every file."""

    def test_unseeded_randomness_in_decide_flagged(self):
        source = """
            import random

            from repro.core.policy import DVSAction, DVSPolicy

            class Flaky(DVSPolicy):
                def decide(self, inputs):
                    return DVSAction(random.choice([-1, 0, 1]))
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        r8 = [v for v in violations if v.rule == "R8"]
        assert len(r8) == 1
        assert "random.choice" in r8[0].message

    def test_seeded_rng_on_self_is_clean(self):
        source = """
            import random

            from repro.core.policy import DVSAction, DVSPolicy

            class Seeded(DVSPolicy):
                def __init__(self):
                    self._rng = random.Random(1)

                def decide(self, inputs):
                    if self._rng.random() < 0.5:
                        return DVSAction.STEP_DOWN
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_wall_clock_in_decide_flagged(self):
        source = """
            import time

            from repro.core.policy import DVSAction, DVSPolicy

            class Clocked(DVSPolicy):
                def decide(self, inputs):
                    if time.time() > 0:
                        return DVSAction.HOLD
                    return DVSAction.STEP_UP
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        r8 = [v for v in violations if v.rule == "R8"]
        assert len(r8) == 1
        assert "wall-clock" in r8[0].message

    def test_global_statement_flagged(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            _CALLS = 0

            class Counting(DVSPolicy):
                def decide(self, inputs):
                    global _CALLS
                    _CALLS = _CALLS + 1
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert any(
            v.rule == "R8" and "global statement" in v.message
            for v in violations
        )

    def test_module_state_mutation_flagged(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            _HISTORY = []
            _LAST = {}

            class Leaky(DVSPolicy):
                def decide(self, inputs):
                    _HISTORY.append(inputs.link_utilization)
                    _LAST["lu"] = inputs.link_utilization
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        r8 = sorted(v.message for v in violations if v.rule == "R8")
        assert len(r8) == 2
        assert any("_HISTORY" in m and "mutation" in m for m in r8)
        assert any("_LAST" in m and "store" in m for m in r8)

    def test_local_shadowing_module_name_is_clean(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            window = 200

            class Shadowing(DVSPolicy):
                def decide(self, inputs):
                    window = [inputs.link_utilization]
                    window.append(inputs.buffer_utilization)
                    return DVSAction.HOLD
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_self_state_and_helpers_are_clean(self):
        source = """
            from repro.core.policy import DVSAction, DVSPolicy

            class Stateful(DVSPolicy):
                def decide(self, inputs):
                    self._ewma = 0.5 * inputs.link_utilization
                    self._seen.append(inputs.window_cycles)
                    return max(DVSAction.HOLD, DVSAction.HOLD)
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_non_policy_class_not_scanned(self):
        source = """
            import random

            class FreeAgent:
                def decide(self, inputs):
                    return random.choice([0, 1])
            """
        violations = _lint_source(source, "src/repro/plugins/x.py")
        assert [v for v in violations if v.rule == "R8"] == []

    def test_real_policy_modules_are_clean(self):
        violations, errors = lint_paths(
            [REPO_ROOT / "src" / "repro" / "core"]
        )
        assert errors == []
        assert [v for v in violations if v.rule == "R8"] == []


class TestRuleR9:
    """Determinism taint: nondeterminism reads hidden behind helper calls."""

    def test_taint_through_out_of_scope_helper_flagged(self):
        violations = _lint_sources(
            {
                "src/repro/harness/clockish.py": """
                    import time

                    def now() -> float:
                        return time.time()
                    """,
                "src/repro/network/metrics.py": """
                    from repro.harness.clockish import now

                    def span(start: float) -> float:
                        return now() - start
                    """,
            }
        )
        r9 = [v for v in violations if v.rule == "R9"]
        assert len(r9) == 1
        assert r9[0].path == "src/repro/network/metrics.py"
        assert "wall-clock" in r9[0].message
        assert "repro.harness.clockish.now" in r9[0].message
        # The witness chain names the concrete source read.
        assert "time.time" in r9[0].message

    def test_taint_propagates_through_two_hops(self):
        violations = _lint_sources(
            {
                "src/repro/harness/deep.py": """
                    import random

                    def roll() -> float:
                        return random.random()

                    def wrapped() -> float:
                        return roll() * 2.0
                    """,
                "src/repro/traffic/jitter.py": """
                    from repro.harness.deep import wrapped

                    def jitter() -> float:
                        return wrapped()
                    """,
            }
        )
        r9 = [v for v in violations if v.rule == "R9"]
        assert len(r9) == 1
        assert "unseeded randomness" in r9[0].message
        assert "wrapped" in r9[0].message and "roll" in r9[0].message

    def test_in_scope_root_cause_not_repeated_at_callers(self):
        # The helper is itself in scope, so R1 owns the root cause; the
        # caller must NOT get a cascading R9 for the same read.
        violations = _lint_sources(
            {
                "src/repro/network/helper.py": """
                    import time

                    def now() -> float:
                        return time.time()
                    """,
                "src/repro/network/user.py": """
                    from repro.network.helper import now

                    def span(start: float) -> float:
                        return now() - start
                    """,
            }
        )
        assert [v.rule for v in violations] == ["R1"]
        assert violations[0].path == "src/repro/network/helper.py"

    def test_direct_env_read_in_scope_flagged(self):
        source = """
            import os

            def knob() -> str:
                return os.environ["REPRO_KNOB"]
            """
        violations = _lint_source(source, "src/repro/traffic/x.py")
        assert [v.rule for v in violations] == ["R9"]
        assert "environment state" in violations[0].message

    def test_env_read_out_of_scope_not_flagged(self):
        source = """
            import os

            def knob() -> str:
                return os.environ.get("REPRO_KNOB", "")
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_clean_helper_not_flagged(self):
        violations = _lint_sources(
            {
                "src/repro/harness/pure.py": """
                    def double(x: float) -> float:
                        return 2.0 * x
                    """,
                "src/repro/network/user.py": """
                    from repro.harness.pure import double

                    def span(start: float) -> float:
                        return double(start)
                    """,
            }
        )
        assert violations == []


class TestRuleR10:
    """Unit/dimension analysis over the power and energy bookkeeping."""

    def test_suffix_mismatch_addition_flagged(self):
        source = """
            def total(energy_fj: int, leak_power_mw: float) -> float:
                return energy_fj + leak_power_mw
            """
        violations = _lint_source(source, "src/repro/power/x.py")
        assert [v.rule for v in violations] == ["R10"]
        assert "femtojoules + milliwatts" in violations[0].message

    def test_same_dimension_addition_clean(self):
        source = """
            def total(link_fj: int, static_fj: int) -> int:
                return link_fj + static_fj
            """
        assert _lint_source(source, "src/repro/power/x.py") == []

    def test_annotation_dimensions_used(self):
        source = """
            from repro.units import Cycles, Volts

            def bad(level: Volts, span: Cycles) -> float:
                return level - span
            """
        violations = _lint_source(source, "src/repro/core/x.py")
        assert [v.rule for v in violations] == ["R10"]
        assert "volts - cycles" in violations[0].message

    def test_comparison_mismatch_flagged(self):
        source = """
            def over_budget(energy_fj: int, cap_mw: float) -> bool:
                return energy_fj > cap_mw
            """
        violations = _lint_source(source, "src/repro/power/x.py")
        assert [v.rule for v in violations] == ["R10"]
        assert "comparison" in violations[0].message

    def test_converter_call_satisfies_target_dimension(self):
        source = """
            from repro.units import joules_to_femtojoules

            def ledger(total_j: float) -> int:
                total_fj = joules_to_femtojoules(total_j)
                return total_fj
            """
        assert _lint_source(source, "src/repro/power/x.py") == []

    def test_unconverted_assignment_flagged(self):
        source = """
            def ledger(window_cycles: int) -> int:
                total_fj = window_cycles
                return total_fj
            """
        violations = _lint_source(source, "src/repro/power/x.py")
        assert [v.rule for v in violations] == ["R10"]
        assert "unconverted assignment" in violations[0].message

    def test_augmented_assignment_mismatch_flagged(self):
        source = """
            def drain(total_fj: int, leak_mw: float) -> int:
                total_fj -= leak_mw
                return total_fj
            """
        violations = _lint_source(source, "src/repro/power/x.py")
        assert [v.rule for v in violations] == ["R10"]

    def test_multiplication_yields_unknown_dimension(self):
        # power * time is energy; inference is conservative, so the
        # product is dimension-unknown and never flagged.
        source = """
            def energy(power_mw: float, span_cycles: int) -> float:
                scaled = power_mw * span_cycles
                return scaled + 1.0
            """
        assert _lint_source(source, "src/repro/power/x.py") == []

    def test_out_of_scope_module_not_checked(self):
        source = """
            def total(energy_fj: int, leak_power_mw: float) -> float:
                return energy_fj + leak_power_mw
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_rebinding_updates_the_environment(self):
        # After rebinding to an unknown dimension the name must not keep
        # its suffix-implied dimension.
        source = """
            def total(samples, energy_fj: int) -> float:
                acc = energy_fj
                acc = len(samples)
                return acc + 1
            """
        assert _lint_source(source, "src/repro/power/x.py") == []


class TestRuleR11:
    """Worker isolation: no global state, picklable by construction."""

    def test_worker_mutating_module_global_flagged(self):
        source = """
            _SEEN = []

            def run_point(config):
                _SEEN.append(config)
                return config
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R11"]
        assert "_SEEN" in violations[0].message
        assert "run_point" in violations[0].message

    def test_mutation_reachable_through_helper_flagged_with_chain(self):
        source = """
            _CACHE = {}

            def _remember(key, value):
                _CACHE[key] = value
                return value

            def run_chunk(configs):
                return [_remember(c, c) for c in configs]
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R11"]
        assert (
            "repro.harness.x.run_chunk -> repro.harness.x._remember"
            in violations[0].message
        )

    def test_global_statement_store_flagged(self):
        source = """
            _COUNT = 0

            def run_point(config):
                global _COUNT
                _COUNT = _COUNT + 1
                return config
            """
        violations = _lint_source(source, "src/repro/harness/x.py")
        assert [v.rule for v in violations] == ["R11"]
        assert "stores module global" in violations[0].message

    def test_local_shadowing_global_name_clean(self):
        source = """
            _SEEN = []

            def run_point(config):
                _SEEN = []
                _SEEN.append(config)
                return _SEEN
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_unreachable_mutation_not_flagged(self):
        source = """
            _SEEN = []

            def bookkeeping(config):
                _SEEN.append(config)

            def run_point(config):
                return config
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []

    def test_generator_annotated_config_field_flagged(self):
        source = """
            from dataclasses import dataclass
            from typing import Generator

            @dataclass
            class StreamConfig:
                stream: Generator[float, None, None]
            """
        violations = _lint_source(source, "src/repro/config2.py")
        r11 = [v for v in violations if v.rule == "R11"]
        assert len(r11) == 1
        assert "StreamConfig.stream" in r11[0].message

    def test_lambda_default_in_config_flagged(self):
        source = """
            from dataclasses import dataclass, field

            @dataclass
            class HookConfig:
                direct: object = lambda: 0
                wrapped: object = field(default=lambda: 1)
            """
        violations = _lint_source(source, "src/repro/config2.py")
        r11 = [v for v in violations if v.rule == "R11"]
        assert len(r11) == 2
        assert all("lambda" in v.message for v in r11)

    def test_generator_stored_on_self_in_traffic_class_flagged(self):
        # The PR-7 OnOffSourceSet bug, generalized: a traffic-source
        # class storing a live generator in instance state breaks the
        # pool backend the moment it is pickled.
        source = """
            class Source:
                def __init__(self, rates):
                    self._stream = (r * 2 for r in rates)
            """
        violations = _lint_source(source, "src/repro/traffic/gen.py")
        assert [v.rule for v in violations] == ["R11"]
        assert "generator expression" in violations[0].message
        assert "self._stream" in violations[0].message

    def test_generator_function_call_on_self_flagged(self):
        source = """
            class Source:
                def _ticks(self, rate):
                    t = 0.0
                    while True:
                        t += rate
                        yield t

                def __init__(self, rate):
                    self._stream = self._ticks(rate)
            """
        violations = _lint_source(source, "src/repro/traffic/gen.py")
        assert [v.rule for v in violations] == ["R11"]
        assert "generator function" in violations[0].message

    def test_generator_escaping_via_container_call_flagged(self):
        source = """
            import heapq

            class Source:
                def arm(self, rates):
                    stream = (r * 2 for r in rates)
                    heapq.heappush(self._heap, (0.0, stream))
            """
        violations = _lint_source(source, "src/repro/traffic/gen.py")
        assert [v.rule for v in violations] == ["R11"]
        assert "escape" in violations[0].message

    def test_materialized_list_iterator_clean(self):
        # The actual PR-7 fix: materialize, then iterate the list.
        source = """
            class Source:
                def _burst_times(self, rate):
                    return sorted([rate, rate * 2])

                def __init__(self, rate):
                    self._stream = iter(self._burst_times(rate))
            """
        assert _lint_source(source, "src/repro/traffic/gen.py") == []

    def test_plain_class_outside_traffic_not_in_pickled_set(self):
        source = """
            class Scratch:
                def __init__(self, rates):
                    self._stream = (r * 2 for r in rates)
            """
        assert _lint_source(source, "src/repro/harness/x.py") == []


class TestMutationCatches:
    """Seed realistic bugs into *real* repo modules; the lint must bite."""

    def test_seeded_fj_plus_mw_addition_caught(self):
        path = "src/repro/network/batched.py"
        source = (REPO_ROOT / path).read_text(encoding="utf-8")
        anchor = "energy[0, j] = dvs.total_energy_fj"
        assert anchor in source, "mutation anchor moved; update the test"
        mutated = source.replace(
            anchor,
            "energy[0, j] = dvs.total_energy_fj"
            " + channel.leak_power_mw",
            1,
        )
        clean = _lint_source(source, path)
        assert [v for v in clean if v.rule == "R10"] == []
        violations = _lint_source(mutated, path)
        r10 = [v for v in violations if v.rule == "R10"]
        assert len(r10) == 1
        assert "femtojoules + milliwatts" in r10[0].message

    def test_seeded_global_mutation_in_worker_caught(self):
        path = "src/repro/harness/backends.py"
        source = (REPO_ROOT / path).read_text(encoding="utf-8")
        anchor = "    incidents: list[PointFailure] = []\n"
        assert source.count(anchor) == 1, "mutation anchor moved; update the test"
        mutated = (
            source.replace(
                anchor,
                anchor + "    _COMPLETED_BATCHES.append(len(configs))\n",
                1,
            )
            + "\n_COMPLETED_BATCHES = []\n"
        )
        clean = _lint_source(source, path)
        assert [v for v in clean if v.rule == "R11"] == []
        violations = _lint_source(mutated, path)
        r11 = [v for v in violations if v.rule == "R11"]
        assert len(r11) == 1
        assert "_COMPLETED_BATCHES" in r11[0].message
        assert "run_config_batch" in r11[0].message


class TestBaselineWorkflow:
    def _dirty_tree(self, tmp_path):
        module = tmp_path / "repro" / "network" / "leaf.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        return module

    def test_update_then_clean_then_new_finding(self, tmp_path, capsys):
        module = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"

        assert main([str(module), "--no-baseline"]) == 1
        capsys.readouterr()

        assert (
            main([str(module), "--update-baseline", "--baseline", str(baseline)])
            == 0
        )
        assert "wrote 1 baseline entrie(s)" in capsys.readouterr().out

        assert main([str(module), "--baseline", str(baseline)]) == 0
        assert "1 baseline finding(s)" in capsys.readouterr().out

        # A new finding is NOT absorbed by the baseline.
        module.write_text(
            module.read_text(encoding="utf-8")
            + "\n\ndef stamp2():\n    return time.monotonic()\n",
            encoding="utf-8",
        )
        assert main([str(module), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stamp2" not in out  # message does not name functions
        assert "1 violation(s)" in out

    def test_justifications_survive_update(self, tmp_path, capsys):
        module = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(module), "--update-baseline", "--baseline", str(baseline)])
        capsys.readouterr()

        entries = baseline_io.load(baseline)
        assert entries[0]["justification"] == baseline_io.TODO_JUSTIFICATION
        entries[0]["justification"] = "known wall-clock read, display only"
        baseline.write_text(
            json.dumps({"entries": entries}), encoding="utf-8"
        )

        main([str(module), "--update-baseline", "--baseline", str(baseline)])
        capsys.readouterr()
        entries = baseline_io.load(baseline)
        assert entries[0]["justification"] == "known wall-clock read, display only"

    def test_stale_entry_reported_but_not_fatal(self, tmp_path, capsys):
        module = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(module), "--update-baseline", "--baseline", str(baseline)])
        capsys.readouterr()

        # Fix the finding; the baseline entry goes stale.
        module.write_text("def stamp():\n    return 0.0\n", encoding="utf-8")
        assert main([str(module), "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "stale baseline entry" in captured.err

    def test_corrupt_baseline_is_a_hard_error(self, tmp_path, capsys):
        module = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json", encoding="utf-8")
        assert main([str(module), "--baseline", str(baseline)]) == 2
        assert "invalid JSON" in capsys.readouterr().err


class TestIncrementalCache:
    def test_second_run_served_from_cache_and_identical(self, tmp_path, capsys):
        module = tmp_path / "repro" / "network" / "leaf.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        cache = tmp_path / "cache.json"
        argv = [str(module), "--no-baseline", "--cache", str(cache)]

        assert main(argv) == 1
        first = capsys.readouterr().out
        assert cache.is_file()
        assert main(argv) == 1
        assert capsys.readouterr().out == first

    def test_cache_invalidated_by_file_edit(self, tmp_path, capsys):
        module = tmp_path / "repro" / "network" / "leaf.py"
        module.parent.mkdir(parents=True)
        module.write_text("def stamp():\n    return 0.0\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        argv = [str(module), "--no-baseline", "--cache", str(cache)]

        assert main(argv) == 0
        capsys.readouterr()
        module.write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        assert main(argv) == 1
        assert "R1" in capsys.readouterr().out

    def test_cached_suppression_accounting_survives_short_circuit(
        self, tmp_path, capsys
    ):
        module = tmp_path / "repro" / "network" / "leaf.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # repro-lint: ignore[R1]\n",
            encoding="utf-8",
        )
        cache = tmp_path / "cache.json"
        argv = [
            str(module), "--no-baseline", "--cache", str(cache),
            "--format", "json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["suppressions"] == {"R1": 1}
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["suppressions"] == {"R1": 1}


class TestSarifOutput:
    def test_sarif_report_shape(self, capsys):
        assert (
            main(
                [
                    str(FIXTURES),
                    "--include-fixtures",
                    "--no-baseline",
                    "--format",
                    "sarif",
                ]
            )
            == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == "2.1.0"
        run = report["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert [rule["id"] for rule in driver["rules"]] == list(RULES)
        results = run["results"]
        assert len(results) == len(RULES) + 2  # R6 fires three times
        for result in results:
            assert result["ruleId"] in RULES
            location = result["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1
            assert location["artifactLocation"]["uri"]
        # ruleIndex must agree with the rules array.
        for result in results:
            index = result["ruleIndex"]
            assert driver["rules"][index]["id"] == result["ruleId"]


class TestSuppressions:
    def test_inline_ignore_suppresses_only_that_rule(self):
        source = """
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[R1]

            def stamp2():
                return time.time()
            """
        violations = _lint_source(source, "src/repro/network/x.py")
        assert len(violations) == 1
        assert violations[0].line == 8

    def test_skip_file_pragma_disables_the_file(self):
        source = """
            # repro-lint: skip-file
            import time

            def stamp():
                return time.time()
            """
        assert _lint_source(source, "src/repro/network/x.py") == []

    def test_fixture_suppression_example_not_reported(self):
        violations, _ = lint_paths([FIXTURES], include_fixtures=True)
        suppressed_lines = [
            v
            for v in violations
            if "jittered_cycle" in v.message or "random.random" in v.message
        ]
        assert suppressed_lines == []

    def test_pragma_covers_multiline_statement(self):
        # The violation anchors on the call line; the pragma sits on the
        # statement's closing line. The suppression span is the whole
        # simple statement, so it still applies.
        source = """
            import time

            def stamp():
                return (
                    time.time()
                )  # repro-lint: ignore[R1]
            """
        assert _lint_source(source, "src/repro/network/x.py") == []

    def test_pragma_on_unrelated_rule_does_not_suppress(self):
        source = """
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[R2]
            """
        violations = _lint_source(source, "src/repro/network/x.py")
        assert [v.rule for v in violations] == ["R1"]

    def test_unknown_rule_pragma_warns(self):
        linter = Linter(include_fixtures=True)
        # Concatenated so this test file's own lint run does not see a
        # literal unknown-rule pragma on this line.
        pragma = "# repro-lint: " + "ignore[R99]"
        linter.add_source(
            "import time\n\n\ndef stamp():\n"
            f"    return time.time()  {pragma}\n",
            "src/repro/network/x.py",
        )
        violations = linter.run()
        # R99 suppresses nothing and is called out as unknown.
        assert [v.rule for v in violations] == ["R1"]
        assert any("unknown rule 'R99'" in w for w in linter.warnings)

    def test_suppressions_are_tallied_per_rule(self):
        linter = Linter(include_fixtures=True)
        linter.add_source(
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # repro-lint: ignore[R1]\n",
            "src/repro/network/x.py",
        )
        assert linter.run() == []
        assert linter.suppressed_counts == {"R1": 1}


class TestDistributedFabricCoverage:
    """The distributed fabric package sits inside the R7/R11 net: its
    modules are harness paths, and its work unit is an entry point."""

    def test_r7_covers_the_distributed_package(self):
        source = """
            def relay(send, message):
                try:
                    send(message)
                except Exception:
                    return None
            """
        violations = _lint_source(
            source, "src/repro/harness/distributed/worker.py"
        )
        assert [v.rule for v in violations] == ["R7"]

    def test_r7_accepts_the_fabric_teardown_idiom(self):
        """``except asyncio.CancelledError`` is a *specific* handler —
        the coordinator's quiet-teardown idiom must not need pragmas."""
        source = """
            import asyncio

            async def handle(reader):
                try:
                    return await reader.read()
                except asyncio.CancelledError:
                    return None
            """
        assert _lint_source(
            source, "src/repro/harness/distributed/coordinator.py"
        ) == []

    def test_run_worker_chunk_is_a_worker_entry_point(self):
        from repro.analysis.isolation import WORKER_ENTRY_POINTS

        assert "run_worker_chunk" in WORKER_ENTRY_POINTS
        source = """
            _SEEN = []

            def run_worker_chunk(configs, policy):
                _SEEN.append(configs)
                return configs
            """
        violations = _lint_source(
            source, "src/repro/harness/distributed/worker.py"
        )
        assert [v.rule for v in violations] == ["R11"]
        assert "run_worker_chunk" in violations[0].message
        assert "_SEEN" in violations[0].message

    def test_mutation_behind_the_fabric_entry_point_flagged_with_chain(self):
        source = """
            _STATS = {}

            def _bump(key):
                _STATS[key] = _STATS.get(key, 0) + 1

            def run_worker_chunk(configs, policy):
                _bump("chunks")
                return configs
            """
        violations = _lint_source(
            source, "src/repro/harness/distributed/worker.py"
        )
        assert [v.rule for v in violations] == ["R11"]
        assert (
            "run_worker_chunk -> "
            "repro.harness.distributed.worker._bump" in violations[0].message
        )
