"""Pipelined virtual-channel router.

Models one router of the paper's network (Section 4.2): an input-queued VC
router in the style of the Alpha 21364's integrated router, with

* per-input-port VC buffers (128 flit slots split across 2 VCs by default),
* route computation and VC allocation for head flits,
* separable switch allocation with rotating priority per output port and at
  most one grant per input port per cycle (crossbar speedup 1),
* credit-based flow control with a configurable credit return delay,
* a fixed pipeline latency applied to flits in flight, standing in for the
  13-stage pipeline's stages between switch allocation and link traversal,
* immediate ejection at the destination (one flit per VC per cycle, no
  ejection-bandwidth artifacts, per the paper's latency definition).

The router communicates with the rest of the network only through the
kernel's event queue: launched flits become ARRIVAL events at the
downstream router, dequeued flits become CREDIT events at the upstream
router. The per-cycle :meth:`step` is the kernel's hot path and favors
flat data structures over abstraction; invariants are still enforced by
the flow-control primitives it calls.

Two callback seams connect the router to the layers above it without the
router knowing they exist (see ``docs/architecture.md``):

* ``packet_sink`` — invoked with ``(packet, now)`` when a tail flit is
  ejected at its destination. The cycle kernel passes its instrumentation
  dispatcher here, which fans out to every ``on_packet_ejected`` observer.
* ``injected_sink`` — invoked (no arguments) when a packet's tail flit has
  fully entered the local input buffers, i.e. the packet left the source
  queue side of the router. The kernel maintains its O(1)
  pending-source-packet counter through this seam.
* ``age_hooks`` — per-input-port lists of ``hook(age_cycles)`` callables
  fired on every dequeue; utilization probes tap buffer-age distributions
  (paper Figure 5) through these.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..errors import SimulationError
from .arbiters import RoundRobinArbiter
from .channel import NetworkChannel
from .flowcontrol import CreditState, OccupancyTracker
from .packet import Flit, Packet
from .routing import RoutingFunction
from .topology import Topology
from .vc import UNROUTED, InputVC

#: Event kinds understood by the kernel's dispatch loop.
EVENT_ARRIVAL = 0
EVENT_CREDIT = 1
EVENT_PHASE = 2

ScheduleFn = Callable[[int, tuple], None]
#: The kernel-facing ejection seam: called with (packet, now) on tail eject.
PacketSink = Callable[[Packet, int], None]


def _noop() -> None:
    """Default ``injected_sink`` for routers built outside the kernel."""


class Router:
    """One virtual-channel router plus its attached output channels."""

    __slots__ = (
        "node",
        "local_port",
        "vcs_per_port",
        "routing",
        "in_vcs",
        "occupancy",
        "channels",
        "credit_states",
        "credit_targets",
        "connected_out",
        "sa_arbiters",
        "inj_queue",
        "inj_flits",
        "inj_pos",
        "inj_vc",
        "total_buffered",
        "packet_sink",
        "injected_sink",
        "age_hooks",
        "schedule",
        "credit_delay",
        "flits_ejected",
        "packets_ejected",
        "flits_launched",
        "_vc_scan",
    )

    def __init__(
        self,
        node: int,
        topology: Topology,
        routing: RoutingFunction,
        *,
        vcs_per_port: int,
        buffers_per_vc: int,
        credit_delay: int,
        schedule: ScheduleFn,
        packet_sink: PacketSink,
        injected_sink: Callable[[], None] | None = None,
    ):
        self.node = node
        self.local_port = topology.local_port
        self.vcs_per_port = vcs_per_port
        self.routing = routing
        self.schedule = schedule
        self.packet_sink = packet_sink
        self.injected_sink = injected_sink if injected_sink is not None else _noop
        self.credit_delay = credit_delay

        num_in_ports = topology.ports_per_router + 1  # network ports + local
        self.in_vcs = [
            [InputVC(buffers_per_vc) for _ in range(vcs_per_port)]
            for _ in range(num_in_ports)
        ]
        # Occupancy trackers only where an upstream DVS controller (or a
        # profiling probe) watches the port, i.e. network input ports.
        self.occupancy: list[OccupancyTracker | None] = [
            OccupancyTracker() if p < topology.ports_per_router else None
            for p in range(num_in_ports)
        ]
        # Upstream (router, out_port) feeding each network input port.
        self.credit_targets: list[tuple[int, int] | None] = []
        for p in range(num_in_ports):
            if p < topology.ports_per_router:
                upstream = topology.neighbor(node, p)
                if upstream is None:
                    self.credit_targets.append(None)
                else:
                    self.credit_targets.append((upstream, topology.opposite_port(p)))
            else:
                self.credit_targets.append(None)

        # Output side: filled in by the simulator via attach_channel().
        self.channels: list[NetworkChannel | None] = [None] * topology.ports_per_router
        self.credit_states: list[CreditState | None] = [None] * topology.ports_per_router
        self.connected_out: tuple[int, ...] = ()
        self.sa_arbiters: dict[int, RoundRobinArbiter] = {}

        self.inj_queue: deque[Packet] = deque()
        self.inj_flits: list[Flit] = []
        self.inj_pos = 0
        self.inj_vc = 0
        self.total_buffered = 0
        self.age_hooks: dict[int, list[Callable[[int], None]]] = {}
        self.flits_ejected = 0
        self.packets_ejected = 0
        self.flits_launched = 0

        self._vc_scan = [
            (p, v, self.in_vcs[p][v])
            for p in range(num_in_ports)
            for v in range(vcs_per_port)
        ]

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_channel(
        self, out_port: int, channel: NetworkChannel, buffers_per_vc: int
    ) -> None:
        """Connect *channel* at *out_port* (called during network build)."""
        if self.channels[out_port] is not None:
            raise SimulationError(f"output port {out_port} already attached")
        self.channels[out_port] = channel
        self.credit_states[out_port] = CreditState(self.vcs_per_port, buffers_per_vc)
        self.sa_arbiters[out_port] = RoundRobinArbiter(
            len(self.in_vcs) * self.vcs_per_port
        )
        self.connected_out = tuple(
            p for p, ch in enumerate(self.channels) if ch is not None
        )

    @property
    def is_idle(self) -> bool:
        """True when :meth:`step` would be a no-op this cycle."""
        return not (self.total_buffered or self.inj_flits or self.inj_queue)

    # ------------------------------------------------------------------
    # Read-only views (diagnostics / network sanitizer)
    # ------------------------------------------------------------------

    def iter_vc_states(self):
        """Yield ``(in_port, vc, InputVC)`` for every input VC."""
        return iter(self._vc_scan)

    def unsent_source_flits(self) -> int:
        """Flits offered at this node but not yet in the input buffers:
        whole packets queued at the source plus the unsent remainder of a
        partially injected packet."""
        queued = sum(packet.size_flits for packet in self.inj_queue)
        return queued + len(self.inj_flits) - self.inj_pos

    # ------------------------------------------------------------------
    # Event handlers (called by the simulator dispatch loop)
    # ------------------------------------------------------------------

    def on_arrival(self, port: int, vc: int, flit: Flit, now: int) -> None:
        """A flit arrived from the upstream channel into input *port*."""
        self.in_vcs[port][vc].buffer.enqueue(flit, now)
        tracker = self.occupancy[port]
        if tracker is not None:
            tracker.on_enqueue(now)
        self.total_buffered += 1

    def on_credit(self, out_port: int, vc: int, is_tail: bool) -> None:
        """A credit returned from the downstream router.

        Credits only replenish buffer slots; output-VC ownership is
        released when the tail flit is *sent* (see :meth:`_launch`), per
        classic VC flow control — packets may queue back-to-back in a
        downstream VC buffer.
        """
        state = self.credit_states[out_port]
        if state is None:
            raise SimulationError(f"credit for unattached port {out_port}")
        state.restore(vc)

    def offer_packet(self, packet: Packet) -> None:
        """Enqueue *packet* in this node's source queue."""
        self.inj_queue.append(packet)

    # ------------------------------------------------------------------
    # Per-cycle pipeline
    # ------------------------------------------------------------------

    def step(self, now: int) -> None:
        """One router cycle: eject, route/allocate, switch-allocate, inject."""
        vcs_per_port = self.vcs_per_port
        requests: dict[int, list[int]] | None = None

        for p, v, vcstate in self._vc_scan:
            buf = vcstate.buffer.flits
            if not buf:
                continue
            out_port = vcstate.out_port
            if out_port == UNROUTED:
                head = buf[0]
                if not head.is_head:
                    raise SimulationError(
                        f"body flit at head of unrouted VC at node {self.node}"
                    )
                packet = head.packet
                if packet.dst == self.node:
                    vcstate.out_port = self.local_port
                    vcstate.out_vc = 0
                    out_port = self.local_port
                else:
                    out_port = self._route_and_allocate(vcstate, packet)
                    if out_port == UNROUTED:
                        continue  # retry next cycle
            if out_port == self.local_port:
                self._eject(p, v, vcstate, now)
                continue
            # Switch-allocation request: needs a credit and a willing wire.
            credit_state = self.credit_states[out_port]
            if credit_state.credits[vcstate.out_vc] <= 0:
                continue
            dvs = self.channels[out_port].dvs
            if dvs.locked or dvs.busy_until >= now + 1:
                continue
            if requests is None:
                requests = {}
            rid = p * vcs_per_port + v
            bucket = requests.get(out_port)
            if bucket is None:
                requests[out_port] = [rid]
            else:
                bucket.append(rid)

        if requests:
            granted_inputs = 0
            for out_port, rids in requests.items():
                winner = self._arbitrate(out_port, rids, granted_inputs, vcs_per_port)
                if winner < 0:
                    continue
                granted_inputs |= 1 << (winner // vcs_per_port)
                self._launch(out_port, winner // vcs_per_port, winner % vcs_per_port, now)

        if self.inj_flits or self.inj_queue:
            self._inject(now)

    # ------------------------------------------------------------------
    # Stage helpers
    # ------------------------------------------------------------------

    def _route_and_allocate(self, vcstate: InputVC, packet: Packet) -> int:
        """Route computation + VC allocation for the packet at *vcstate*'s head.

        Route computation runs once per packet per hop and its result is
        cached on the VC; VC allocation retries each cycle against the
        cached options. Returns the chosen output port, or UNROUTED if
        every candidate port's permitted downstream VCs are currently held.
        """
        options = vcstate.route_options
        if options is None:
            routing = self.routing
            node = self.node
            options = []
            for out_port in routing.candidates(node, packet.dst):
                if self.credit_states[out_port] is None:
                    raise SimulationError(
                        f"route to unattached port {out_port} at node {node}"
                    )
                vc_class = packet.vc_class if packet.last_dim == out_port >> 1 else 0
                options.append(
                    (out_port, routing.allowed_vcs(node, out_port, packet.dst, vc_class))
                )
            vcstate.route_options = options
        for out_port, allowed in options:
            credit_state = self.credit_states[out_port]
            free = credit_state.vc_free
            for downstream_vc in allowed:
                if free[downstream_vc]:
                    credit_state.allocate_vc(downstream_vc)
                    vcstate.out_port = out_port
                    vcstate.out_vc = downstream_vc
                    return out_port
        return UNROUTED

    def _arbitrate(
        self, out_port: int, rids: list[int], granted_inputs: int, vcs_per_port: int
    ) -> int:
        """Rotating-priority grant among *rids*, skipping granted inputs."""
        arbiter = self.sa_arbiters[out_port]
        head = arbiter.priority_head
        size = arbiter.size
        best = -1
        best_key = size
        for rid in rids:
            if granted_inputs and (granted_inputs >> (rid // vcs_per_port)) & 1:
                continue
            key = (rid - head) % size
            if key < best_key:
                best_key = key
                best = rid
        if best >= 0:
            arbiter.advance_past(best)
        return best

    def _launch(self, out_port: int, p: int, v: int, now: int) -> None:
        """Winner of switch allocation: move the flit onto the channel."""
        vcstate = self.in_vcs[p][v]
        flit = vcstate.buffer.dequeue()
        self.total_buffered -= 1
        tracker = self.occupancy[p]
        if tracker is not None:
            tracker.on_dequeue(now)
        if self.age_hooks:
            hooks = self.age_hooks.get(p)
            if hooks:
                age = now - flit.buffer_arrival_cycle
                for hook in hooks:
                    hook(age)
        target = self.credit_targets[p]
        if target is not None:
            self.schedule(
                now + self.credit_delay,
                (EVENT_CREDIT, target[0], target[1], v, flit.is_tail),
            )
        credit_state = self.credit_states[out_port]
        credit_state.consume(vcstate.out_vc)
        channel = self.channels[out_port]
        arrival = channel.send(now)
        spec = channel.spec
        self.schedule(
            arrival, (EVENT_ARRIVAL, spec.dst_node, spec.dst_port, vcstate.out_vc, flit)
        )
        self.flits_launched += 1
        if flit.is_head:
            packet = flit.packet
            dim = out_port >> 1
            vc_class = packet.vc_class if packet.last_dim == dim else 0
            packet.vc_class = self.routing.next_vc_class(self.node, out_port, vc_class)
            packet.last_dim = dim
        if flit.is_tail:
            credit_state.release_vc(vcstate.out_vc)
            vcstate.reset_route()

    def _eject(self, p: int, v: int, vcstate: InputVC, now: int) -> None:
        """Immediate ejection: one flit per VC per cycle at the destination."""
        flit = vcstate.buffer.dequeue()
        self.total_buffered -= 1
        tracker = self.occupancy[p]
        if tracker is not None:
            tracker.on_dequeue(now)
        if self.age_hooks:
            hooks = self.age_hooks.get(p)
            if hooks:
                age = now - flit.buffer_arrival_cycle
                for hook in hooks:
                    hook(age)
        target = self.credit_targets[p]
        if target is not None:
            self.schedule(
                now + self.credit_delay,
                (EVENT_CREDIT, target[0], target[1], v, flit.is_tail),
            )
        self.flits_ejected += 1
        if flit.is_tail:
            vcstate.reset_route()
            packet = flit.packet
            packet.ejected_cycle = now
            self.packets_ejected += 1
            self.packet_sink(packet, now)

    def _inject(self, now: int) -> None:
        """Move up to one flit from the source queue into the local port."""
        if not self.inj_flits:
            packet = self.inj_queue[0]
            best = -1
            best_free = 0
            for v, vcstate in enumerate(self.in_vcs[self.local_port]):
                free = vcstate.buffer.free_slots
                if free > best_free:
                    best = v
                    best_free = free
            if best < 0:
                return
            self.inj_queue.popleft()
            self.inj_flits = packet.make_flits()
            self.inj_pos = 0
            self.inj_vc = best
        vcstate = self.in_vcs[self.local_port][self.inj_vc]
        if not vcstate.buffer.is_full:
            vcstate.buffer.enqueue(self.inj_flits[self.inj_pos], now)
            self.total_buffered += 1
            self.inj_pos += 1
            if self.inj_pos >= len(self.inj_flits):
                self.inj_flits = []
                self.inj_pos = 0
                self.injected_sink()
