"""Retry policies and structured failure records for sweep execution.

One OOM-killed worker, one raising config, or one Ctrl-C used to lose an
entire figure campaign. This module is the failure model the execution
backends (:mod:`repro.harness.backends`) build on instead:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *seeded deterministic* jitter, plus an optional per-point wall-clock
  timeout. ``KeyboardInterrupt``/``SystemExit`` are always re-raised, so
  a retry wrapper can never eat an interrupt (lint rule R7 enforces the
  same contract statically for all harness code).
* :class:`PointFailure` — the structured record of one failed (or
  recovered) point: config fingerprint, attempt count, exception repr,
  and the worker outcome. Sweeps degrade gracefully to partial results
  plus an explicit :class:`FailureReport` instead of an opaque traceback.
* :func:`run_point` / :func:`run_chunk` — the resilient single-point and
  per-chunk primitives both backends execute; chaos faults
  (:mod:`repro.harness.chaos`) are injected here, never inside the pure
  simulation path, so golden bit-identity is untouched.

Determinism: retries only re-run a *failed* point, backoff jitter is a
pure function of ``(seed, fingerprint, attempt)``, and a recovered point
returns the exact result an undisturbed run would have produced — so
sweeps that survive faults stay bit-identical to fault-free runs.
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterator, Optional, Sequence

try:  # pragma: no cover - absent only on non-CPython runtimes
    import ctypes

    _HAS_ASYNC_EXC = hasattr(ctypes, "pythonapi")
except ImportError:  # pragma: no cover
    ctypes = None  # type: ignore[assignment]
    _HAS_ASYNC_EXC = False

from ..config import SimulationConfig
from ..errors import ConfigError, ExperimentError, SweepExecutionError
from ..network.simulator import SimulationResult
from .chaos import inject_point_fault
from .runner import run_simulation


class PointTimeout(Exception):
    """Internal: a point exceeded its per-point wall-clock budget."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded, deterministic retry behavior for one sweep point.

    ``max_attempts`` counts the first try: ``1`` disables retries. The
    delay before retry *n* (1-based) is
    ``backoff_base_s * backoff_factor ** (n - 1)``, shrunk by up to
    ``jitter`` (a fraction in ``[0, 1]``) using a generator seeded from
    ``(jitter_seed, fingerprint, n)`` — the same point always backs off
    identically, but different points decorrelate. ``timeout_s`` bounds
    one attempt's wall clock: ``SIGALRM`` on the main thread, an
    async-exception watchdog off it (see :func:`_deadline`); when neither
    is available the policy refuses to run rather than silently dropping
    the protection.
    """

    max_attempts: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    jitter_seed: int = 0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError("max_attempts must be at least 1")
        if self.backoff_base_s < 0:
            raise ExperimentError("backoff_base_s cannot be negative")
        if self.backoff_factor < 1.0:
            raise ExperimentError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ExperimentError("jitter must be within [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ExperimentError("timeout_s must be positive when set")

    def delay_s(self, fingerprint: str, retry: int) -> float:
        """Seconds to wait before retry number *retry* (1-based)."""
        if retry < 1:
            raise ExperimentError("retry number is 1-based")
        base = self.backoff_base_s * self.backoff_factor ** (retry - 1)
        if not self.jitter or not base:
            return base
        rng = Random(f"{self.jitter_seed}:{fingerprint}:{retry}")
        return base * (1.0 - self.jitter * rng.random())


#: The policy backends use when none is given: one retry, tiny backoff,
#: no per-point timeout. Deterministic failures fail fast; transient ones
#: (a chaos fault, a flaky worker) get exactly one second chance.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True, slots=True)
class PointFailure:
    """What happened to one sweep point that did not run cleanly.

    ``recovered`` distinguishes an *incident* (a retry or pool respawn
    eventually produced the result) from a fatal failure (the point has
    no result). ``points`` is 1 except for worker-crash records, which
    describe a whole lost chunk.
    """

    fingerprint: str
    outcome: str  # "raised" | "timeout" | "worker-crash" | "executor"
    attempts: int
    error: str
    recovered: bool = False
    points: int = 1

    def describe(self) -> str:
        state = "recovered" if self.recovered else "failed"
        span = f"{self.points} points" if self.points > 1 else "point"
        # Fingerprints are canonical JSON; hash for a usable short id
        # (prefixes of the JSON are shared across most points).
        short = hashlib.sha256(self.fingerprint.encode("utf-8")).hexdigest()[:12]
        return (
            f"{span} {short}: {state} ({self.outcome}) "
            f"after {self.attempts} attempt(s): {self.error}"
        )


@dataclass
class FailureReport:
    """Aggregated failures and recovered incidents for one sweep."""

    failures: list[PointFailure] = field(default_factory=list)
    incidents: list[PointFailure] = field(default_factory=list)

    def record(self, failure: PointFailure) -> None:
        (self.incidents if failure.recovered else self.failures).append(failure)

    def merge(self, other: "FailureReport") -> None:
        self.failures.extend(other.failures)
        self.incidents.extend(other.incidents)

    @property
    def ok(self) -> bool:
        """True when every point produced a result (incidents are fine)."""
        return not self.failures

    def raise_if_failures(self, total: Optional[int] = None) -> None:
        """Raise :class:`SweepExecutionError` when any point has no result."""
        if not self.failures:
            return
        lost = sum(f.points for f in self.failures)
        of_total = f" of {total}" if total is not None else ""
        lines = "\n".join(f"  - {f.describe()}" for f in self.failures)
        raise SweepExecutionError(
            f"{lost}{of_total} sweep point(s) failed after retries:\n{lines}",
            failures=self.failures,
        )

    def describe(self) -> str:
        """Multi-line human summary (empty string when nothing happened)."""
        lines: list[str] = []
        if self.failures:
            lines.append(f"{len(self.failures)} point(s) failed:")
            lines.extend(f"  - {f.describe()}" for f in self.failures)
        if self.incidents:
            lines.append(f"{len(self.incidents)} incident(s) recovered:")
            lines.extend(f"  - {f.describe()}" for f in self.incidents)
        return "\n".join(lines)


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`PointTimeout` if the block exceeds *seconds*.

    On the main thread of a Unix process (serial runs, process-pool
    workers) the deadline is a ``SIGALRM``/``setitimer``. Off the main
    thread — distributed workers run chunks inside an asyncio executor
    thread — signals cannot be armed, so a monotonic watchdog timer
    delivers :class:`PointTimeout` asynchronously into the running
    thread instead (:func:`_watchdog_deadline`). A timeout is therefore
    *always* enforced; if neither mechanism exists on the platform, a
    :class:`~repro.errors.ConfigError` says so loudly rather than
    silently dropping the protection.
    """
    if seconds is None:
        yield
        return
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        def _trip(signum: int, frame: object) -> None:
            raise PointTimeout(f"point exceeded {seconds:g}s wall clock")

        previous = signal.signal(signal.SIGALRM, _trip)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return
    if not _HAS_ASYNC_EXC:
        raise ConfigError(
            "per-point timeout_s cannot be enforced here: SIGALRM is "
            "unavailable off the main thread and this runtime has no "
            "PyThreadState_SetAsyncExc fallback; drop timeout_s or run "
            "points on the main thread"
        )
    with _watchdog_deadline(seconds):
        yield


@contextmanager
def _watchdog_deadline(seconds: float) -> Iterator[None]:
    """Off-main-thread deadline: a watchdog timer asynchronously raises
    :class:`PointTimeout` in the calling thread after *seconds*.

    Uses ``PyThreadState_SetAsyncExc``, which delivers the exception at
    the next bytecode boundary — it interrupts pure-Python work (the
    simulator kernel) but not a blocking C call, which only trips the
    deadline once it returns. Disarm is race-guarded: after the block
    exits the watchdog can no longer raise, and a pending undelivered
    exception is cleared.
    """
    thread_id = threading.get_ident()
    lock = threading.Lock()
    armed = [True]
    message = f"point exceeded {seconds:g}s wall clock"

    # PyThreadState_SetAsyncExc only accepts an exception *class* (an
    # instance trips SystemError at delivery), so the deadline message
    # rides in via a closure subclass instantiated at raise time.
    class _Expired(PointTimeout):
        def __init__(self) -> None:
            super().__init__(message)

    def _fire() -> None:
        with lock:
            if armed[0]:
                ctypes.pythonapi.PyThreadState_SetAsyncExc(
                    ctypes.c_ulong(thread_id), ctypes.py_object(_Expired)
                )

    watchdog = threading.Timer(seconds, _fire)
    watchdog.daemon = True
    watchdog.start()
    try:
        yield
    finally:
        with lock:
            armed[0] = False
            watchdog.cancel()
            # Clear a fired-but-undelivered exception so it cannot leak
            # into unrelated code after the protected block.
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(thread_id), None
            )


def run_point(
    config: SimulationConfig,
    policy: Optional[RetryPolicy] = None,
    *,
    runner: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[Optional[SimulationResult], Optional[PointFailure]]:
    """Run one point under *policy*; never raises for per-point faults.

    Returns ``(result, None)`` on a clean first attempt,
    ``(result, incident)`` when a retry recovered the point, and
    ``(None, failure)`` when every attempt failed.
    ``KeyboardInterrupt``/``SystemExit`` always propagate immediately.
    """
    if policy is None:
        policy = DEFAULT_RETRY_POLICY
    if runner is None:
        runner = run_simulation
    fingerprint = config.fingerprint()
    outcome = "raised"
    error = ""
    for attempt in range(1, policy.max_attempts + 1):
        if attempt > 1:
            sleep(policy.delay_s(fingerprint, attempt - 1))
        try:
            with _deadline(policy.timeout_s):
                inject_point_fault(fingerprint)
                result = runner(config)
        except (KeyboardInterrupt, SystemExit):
            raise
        except PointTimeout as exc:
            outcome, error = "timeout", str(exc)
        except Exception as exc:
            outcome, error = "raised", repr(exc)
        else:
            incident = None
            if attempt > 1:
                incident = PointFailure(
                    fingerprint=fingerprint,
                    outcome=outcome,
                    attempts=attempt,
                    error=error,
                    recovered=True,
                )
            return result, incident
    return None, PointFailure(
        fingerprint=fingerprint,
        outcome=outcome,
        attempts=policy.max_attempts,
        error=error,
    )


def run_chunk(
    configs: Sequence[SimulationConfig], policy: RetryPolicy
) -> list[tuple[Optional[SimulationResult], Optional[PointFailure]]]:
    """The process-pool work unit: :func:`run_point` over one chunk.

    Top-level (picklable) on purpose — :class:`ProcessPoolBackend`
    submits this per chunk so a raising point inside a worker comes back
    as a :class:`PointFailure` instead of poisoning the whole batch.
    """
    return [run_point(config, policy) for config in configs]
