"""The exception hierarchy: everything catchable as ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.TopologyError,
    errors.RoutingError,
    errors.SimulationError,
    errors.FlowControlError,
    errors.LinkStateError,
    errors.WorkloadError,
    errors.ExperimentError,
    errors.SweepExecutionError,
    errors.ChaosError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_flow_control_is_simulation_error():
    assert issubclass(errors.FlowControlError, errors.SimulationError)


def test_sweep_execution_is_experiment_error_with_failures():
    assert issubclass(errors.SweepExecutionError, errors.ExperimentError)
    bare = errors.SweepExecutionError("lost points")
    assert bare.failures == ()
    attached = errors.SweepExecutionError("lost points", failures=["record"])
    assert attached.failures == ("record",)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_raisable_with_message(exc):
    with pytest.raises(errors.ReproError, match="boom"):
        raise exc("boom")
