"""Thin construction/run helpers around the simulator."""

from __future__ import annotations

from ..config import SimulationConfig
from ..network.simulator import SimulationResult, Simulator


def build_simulator(
    config: SimulationConfig, *, traffic=None, series_window: int = 0
) -> Simulator:
    """Construct a fully wired simulator for *config*."""
    return Simulator(config, traffic=traffic, series_window=series_window)


def run_simulation(
    config: SimulationConfig, *, traffic=None, series_window: int = 0
) -> SimulationResult:
    """Build, warm up, measure, and summarize one simulation."""
    return build_simulator(
        config, traffic=traffic, series_window=series_window
    ).run()
