"""Step-throughput benchmark: event-horizon fast-forward vs plain stepping.

Runs a small matrix of workloads through three kernel variants —

* ``fastforward``: the default kernel (active-router dirty set + quiescence
  skipping),
* ``no-ff``: same dirty-set scheduler, stepping every cycle,
* ``legacy-scan``: the pre-dirty-set kernel proxy (full router scan every
  cycle, no skipping) — the PR-1 baseline,
* ``sanitize``: the default kernel with the :class:`NetworkSanitizer`
  invariant checkers attached (``--sanitize``),

— and reports wall time, simulated cycles/second, skipped-cycle counts, and
speedups. Results are archived as JSON under ``benchmarks/results/``.

Unlike the figure benchmarks this is a standalone script (no
pytest-benchmark) so CI can run it as a perf smoke test::

    PYTHONPATH=src python benchmarks/bench_step_throughput.py --tiny \
        --require-fast-forward

``--require-fast-forward`` exits non-zero if the fast-forward kernel never
skipped a cycle on the low-duty scenarios — the guard that keeps the
optimization from silently rotting into a no-op.
``--check-sanitize-overhead`` gates the sanitizer-enabled run's slowdown
*per mode against the tracked baseline*: each scenario's
sanitize/fastforward wall-time ratio must stay within
``--sanitize-headroom`` (default 1.5x) of the ratio recorded for the same
scenario in ``BENCH_step_throughput.json``'s matching mode. A fixed
absolute cap is also available (``--max-sanitize-overhead X``) but is not
used in CI — the default-scale matrix legitimately records ~1.93x, which
left ~3.5% headroom under the old hard 2.0x bar and flaked on noise.

The script also owns the tracked perf baseline committed at the repo root:
``--write-baseline`` regenerates ``BENCH_step_throughput.json`` (per-scenario
cycles/second and speedups) and ``BENCH_saturation.json`` (the saturation
scenario's throughput plus tracemalloc allocation counts for the pooled and
legacy kernels), keyed by mode so the CI-sized ``--tiny`` numbers and the
full default-scale numbers coexist in one file. ``--check-regression``
compares the current run's fast-forward throughput against that baseline
and exits non-zero when any scenario fell more than
``--regression-tolerance`` (default 25%) below it — the CI perf-smoke gate.

Reference numbers (this container; wall-clock is noisy here, the
interleaved in-process ratio is the stable metric): the calendar-queue +
pooled kernel runs the saturation scenario at ~1.5x the legacy full-scan
kernel (~1.47x on the tiny 4x4 matrix, ~1.55-1.63x at the default 8x8
scale) with a steady-state measured span that allocates no new
per-flit/per-event objects. Low-duty paper workloads are dominated by
fast-forward instead: ~13x over legacy-scan without DVS, ~2x with the
history policy (224 per-port controllers close an EWMA window every 200
cycles, which no amount of skipping removes).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path

from repro.config import (
    DVSControlConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.harness.serialization import write_json
from repro.network.simulator import Simulator

try:  # standalone: python benchmarks/bench_step_throughput.py
    from common import add_profile_argument, maybe_profile
except ImportError:  # imported as benchmarks.bench_step_throughput
    from .common import add_profile_argument, maybe_profile

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
#: Tracked perf baselines, committed at the repo root. Regenerate with
#: ``--write-baseline`` (once per mode: with and without ``--tiny``).
BASELINE_PATH = REPO_ROOT / "BENCH_step_throughput.json"
SATURATION_PATH = REPO_ROOT / "BENCH_saturation.json"
#: The scenario the saturation baseline tracks.
SATURATION_SCENARIO = "saturation-uniform"


@dataclass(frozen=True)
class Scenario:
    name: str
    config: SimulationConfig
    #: Low-duty scenarios must fast-forward; saturation need not.
    expect_skipping: bool


def paper_config(
    *,
    radix: int,
    policy: str,
    kind: str,
    rate: float,
    tasks: int,
    warmup: int,
    measure: int,
) -> SimulationConfig:
    return SimulationConfig(
        network=NetworkConfig(radix=radix, dimensions=2),
        dvs=DVSControlConfig(policy=policy),
        workload=WorkloadConfig(
            kind=kind,
            injection_rate=rate,
            seed=1,
            average_tasks=tasks,
            average_task_duration_s=3.0e-6,
        ),
        warmup_cycles=warmup,
        measure_cycles=measure,
    )


def build_scenarios(tiny: bool) -> list[Scenario]:
    radix = 4 if tiny else 8
    warmup = 200 if tiny else 1_000
    measure = 3_000 if tiny else 20_000

    def cfg(**kwargs):
        return paper_config(radix=radix, warmup=warmup, measure=measure, **kwargs)

    return [
        Scenario(
            "paper-50tasks-low-nodvs",
            cfg(policy="none", kind="two_level", rate=0.01, tasks=50),
            expect_skipping=True,
        ),
        Scenario(
            "paper-50tasks-low-dvs",
            cfg(policy="history", kind="two_level", rate=0.01, tasks=50),
            expect_skipping=True,
        ),
        Scenario(
            "paper-100tasks",
            cfg(policy="history", kind="two_level", rate=0.05, tasks=100),
            expect_skipping=True,
        ),
        Scenario(
            "near-zero-load-uniform",
            cfg(policy="none", kind="uniform", rate=0.005, tasks=50),
            expect_skipping=True,
        ),
        Scenario(
            "saturation-uniform",
            cfg(policy="history", kind="uniform", rate=0.8, tasks=50),
            expect_skipping=False,
        ),
    ]


VARIANTS = ("fastforward", "no-ff", "legacy-scan", "sanitize")


def run_variant(config: SimulationConfig, variant: str, repeats: int) -> dict:
    """Best-of-*repeats* wall time for one kernel variant on *config*."""
    best = None
    simulator = None
    for _ in range(repeats):
        simulator = Simulator(
            config,
            fast_forward=(variant != "no-ff" and variant != "legacy-scan"),
            sanitize=(variant == "sanitize"),
        )
        if variant == "legacy-scan":
            simulator.legacy_scan = True
        start = time.perf_counter()
        simulator.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    cycles = config.total_cycles
    return {
        "wall_s": best,
        "cycles": cycles,
        "cycles_per_s": cycles / best if best else float("inf"),
        "idle_cycles_skipped": simulator.idle_cycles_skipped,
        "idle_spans": simulator.idle_spans,
    }


def run_scenario(scenario: Scenario, repeats: int) -> dict:
    timings = {
        variant: run_variant(scenario.config, variant, repeats)
        for variant in VARIANTS
    }
    fast = timings["fastforward"]
    return {
        "scenario": scenario.name,
        "expect_skipping": scenario.expect_skipping,
        "variants": timings,
        "speedup_vs_no_ff": timings["no-ff"]["wall_s"] / fast["wall_s"],
        "speedup_vs_legacy": timings["legacy-scan"]["wall_s"] / fast["wall_s"],
        "sanitize_overhead": timings["sanitize"]["wall_s"] / fast["wall_s"],
    }


# ---------------------------------------------------------------------------
# Tracked baseline (BENCH_step_throughput.json / BENCH_saturation.json)
# ---------------------------------------------------------------------------


def measure_allocations(config: SimulationConfig, *, legacy: bool) -> dict:
    """Allocation behavior at steady state, via tracemalloc.

    Runs the warmup plus the first half of the measured span untraced —
    the flit/event pools, route memos, and calendar ring all grow lazily
    and need saturation traffic (not just the warmup) to reach their
    high-water marks — then traces the second half. ``net_new_blocks`` is
    the number of allocated blocks still live at the end that were not
    live at trace start; the pooled kernel's steady state should hold
    this near zero, while the legacy kernel keeps a churning inventory of
    per-flit objects visible in ``peak_traced_kib``, tracemalloc's
    high-water mark for the traced span.
    """
    simulator = Simulator(config, fast_forward=False)
    if legacy:
        simulator.legacy_scan = True
    fill = config.measure_cycles // 2
    simulator.run_cycles(config.warmup_cycles + fill)
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    simulator.run_cycles(config.measure_cycles - fill)
    _, peak = tracemalloc.get_traced_memory()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    diff = after.compare_to(before, "filename")
    return {
        "net_new_blocks": sum(d.count_diff for d in diff),
        "grown_blocks": sum(d.count_diff for d in diff if d.count_diff > 0),
        "peak_traced_kib": round(peak / 1024.0, 1),
    }


def baseline_rows(rows: list[dict]) -> dict:
    """The per-scenario numbers the regression gate tracks."""
    return {
        row["scenario"]: {
            "cycles_per_s": round(
                row["variants"]["fastforward"]["cycles_per_s"], 1
            ),
            "speedup_vs_no_ff": round(row["speedup_vs_no_ff"], 3),
            "speedup_vs_legacy": round(row["speedup_vs_legacy"], 3),
            "sanitize_overhead": round(row["sanitize_overhead"], 3),
        }
        for row in rows
    }


def _update_mode_entry(path: Path, mode: str, entry: dict, benchmark: str) -> None:
    """Merge *entry* under ``modes[mode]``, preserving the other mode."""
    report = {"benchmark": benchmark, "modes": {}}
    if path.exists():
        existing = json.loads(path.read_text())
        if isinstance(existing.get("modes"), dict):
            report["modes"] = existing["modes"]
    report["modes"][mode] = entry
    write_json(report, path)


def write_baseline(rows: list[dict], mode: str, scenarios: list[Scenario]) -> None:
    """Regenerate the tracked BENCH_*.json files for *mode*."""
    _update_mode_entry(
        BASELINE_PATH,
        mode,
        {
            "command": f"python benchmarks/bench_step_throughput.py "
            f"{'--tiny ' if mode == 'tiny' else ''}--write-baseline",
            "rows": baseline_rows(rows),
        },
        "step_throughput",
    )
    print(f"baseline written to {BASELINE_PATH}")

    sat_row = next(row for row in rows if row["scenario"] == SATURATION_SCENARIO)
    sat_config = next(
        s.config for s in scenarios if s.name == SATURATION_SCENARIO
    )
    variants = sat_row["variants"]
    print("measuring saturation allocation counts under tracemalloc ...")
    entry = {
        "scenario": SATURATION_SCENARIO,
        "fastforward_cycles_per_s": round(
            variants["fastforward"]["cycles_per_s"], 1
        ),
        "legacy_cycles_per_s": round(variants["legacy-scan"]["cycles_per_s"], 1),
        "speedup_vs_legacy": round(sat_row["speedup_vs_legacy"], 3),
        "sanitize_overhead": round(sat_row["sanitize_overhead"], 3),
        "allocations": {
            "fastforward": measure_allocations(sat_config, legacy=False),
            "legacy-scan": measure_allocations(sat_config, legacy=True),
        },
    }
    _update_mode_entry(SATURATION_PATH, mode, entry, "saturation_hot_path")
    print(f"saturation baseline written to {SATURATION_PATH}")


def check_regression(
    rows: list[dict], baseline_path: Path, mode: str, tolerance: float
) -> int:
    """Fail (non-zero) when throughput fell >*tolerance* below baseline."""
    if not baseline_path.exists():
        print(f"FAIL: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    entry = baseline.get("modes", {}).get(mode)
    if entry is None:
        print(
            f"FAIL: baseline {baseline_path} has no '{mode}' mode; "
            "regenerate with --write-baseline",
            file=sys.stderr,
        )
        return 1
    floor = 1.0 - tolerance
    failures = []
    for row in rows:
        tracked = entry["rows"].get(row["scenario"])
        if tracked is None:
            continue
        current = row["variants"]["fastforward"]["cycles_per_s"]
        ratio = current / tracked["cycles_per_s"]
        marker = "ok" if ratio >= floor else "REGRESSION"
        print(
            f"  {row['scenario']:28s} {current/1e3:8.1f} kcyc/s vs baseline "
            f"{tracked['cycles_per_s']/1e3:8.1f} ({ratio:5.2f}x)  {marker}"
        )
        if ratio < floor:
            failures.append((row["scenario"], ratio))
    if failures:
        print(
            f"FAIL: throughput more than {tolerance:.0%} below baseline on: "
            + ", ".join(f"{name} ({ratio:.2f}x)" for name, ratio in failures),
            file=sys.stderr,
        )
        return 1
    print(f"throughput within {tolerance:.0%} of baseline on all scenarios")
    return 0


def check_sanitize_overhead(
    rows: list[dict], baseline_path: Path, mode: str, headroom: float
) -> int:
    """Per-mode sanitize gate: fail when any scenario's sanitize overhead
    exceeds *headroom* times the ratio tracked in the baseline's *mode*.

    Relative to the committed baseline rather than an absolute cap: the
    sanitizer's legitimate cost differs per mode (~1.16x on the tiny
    matrix, ~1.93x at default scale), so one hard number either flakes on
    the expensive mode or is meaningless on the cheap one.
    """
    if not baseline_path.exists():
        print(f"FAIL: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    entry = baseline.get("modes", {}).get(mode)
    if entry is None:
        print(
            f"FAIL: baseline {baseline_path} has no '{mode}' mode; "
            "regenerate with --write-baseline",
            file=sys.stderr,
        )
        return 1
    failures = []
    for row in rows:
        tracked = entry["rows"].get(row["scenario"], {})
        tracked_overhead = tracked.get("sanitize_overhead")
        if tracked_overhead is None:
            continue
        limit = tracked_overhead * headroom
        ratio = row["sanitize_overhead"]
        marker = "ok" if ratio <= limit else "SANITIZE REGRESSION"
        print(
            f"  {row['scenario']:28s} sanitize {ratio:5.2f}x vs baseline "
            f"{tracked_overhead:5.2f}x (limit {limit:5.2f}x)  {marker}"
        )
        if ratio > limit:
            failures.append((row["scenario"], ratio, limit))
    if failures:
        print(
            "FAIL: sanitizer overhead above per-mode baseline headroom on: "
            + ", ".join(
                f"{name} ({ratio:.2f}x > {limit:.2f}x)"
                for name, ratio, limit in failures
            ),
            file=sys.stderr,
        )
        return 1
    print(
        f"sanitizer overhead within {headroom:.2f}x of the '{mode}' "
        "baseline on all scenarios"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI-sized runs (4x4 mesh, short cycle counts)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repeats per variant; best is reported (default 2)",
    )
    parser.add_argument(
        "--require-fast-forward", action="store_true",
        help="exit non-zero unless low-duty scenarios actually skipped cycles",
    )
    parser.add_argument(
        "--max-sanitize-overhead", type=float, default=0.0, metavar="X",
        help="exit non-zero if sanitize/fastforward wall-time ratio exceeds X "
             "on any scenario (0 = don't check; absolute cap — CI uses the "
             "per-mode --check-sanitize-overhead gate instead)",
    )
    parser.add_argument(
        "--check-sanitize-overhead", action="store_true",
        help="exit non-zero if any scenario's sanitize overhead exceeds "
             "--sanitize-headroom times the ratio tracked for this mode in "
             "the baseline",
    )
    parser.add_argument(
        "--sanitize-headroom", type=float, default=1.5, metavar="X",
        help="allowed sanitize-overhead multiple of the per-mode baseline "
             "(default 1.5)",
    )
    parser.add_argument(
        "--json", default=str(RESULTS_DIR / "step_throughput.json"),
        help="result JSON path ('' to skip writing)",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH),
        help="tracked baseline JSON path (default: BENCH_step_throughput.json "
             "at the repo root)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate BENCH_step_throughput.json and BENCH_saturation.json "
             "for this mode (tiny/default), including tracemalloc allocation "
             "counts for the saturation scenario",
    )
    parser.add_argument(
        "--check-regression", action="store_true",
        help="exit non-zero if fastforward throughput fell more than "
             "--regression-tolerance below the tracked baseline",
    )
    parser.add_argument(
        "--regression-tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional throughput drop vs baseline (default 0.25)",
    )
    add_profile_argument(parser)
    args = parser.parse_args(argv)

    scenarios = build_scenarios(args.tiny)
    rows = []
    with maybe_profile(args.profile):
        for scenario in scenarios:
            row = run_scenario(scenario, max(1, args.repeats))
            rows.append(row)
            fast = row["variants"]["fastforward"]
            print(
                f"{scenario.name:28s} "
                f"ff {fast['wall_s']*1e3:8.1f} ms "
                f"({fast['cycles_per_s']/1e3:8.1f} kcyc/s, "
                f"{fast['idle_cycles_skipped']}/{fast['cycles']} skipped)  "
                f"vs no-ff {row['speedup_vs_no_ff']:5.2f}x  "
                f"vs legacy {row['speedup_vs_legacy']:5.2f}x  "
                f"sanitize {row['sanitize_overhead']:5.2f}x"
            )

    report = {
        "benchmark": "step_throughput",
        "tiny": args.tiny,
        "repeats": max(1, args.repeats),
        "rows": rows,
    }
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json(report, path)
        print(f"\nresults written to {path}")

    if args.require_fast_forward:
        dead = [
            row["scenario"]
            for row in rows
            if row["expect_skipping"]
            and row["variants"]["fastforward"]["idle_cycles_skipped"] == 0
        ]
        if dead:
            print(
                "FAIL: fast-forward never engaged on: " + ", ".join(dead),
                file=sys.stderr,
            )
            return 1
        print("fast-forward engaged on all low-duty scenarios")

    if args.max_sanitize_overhead > 0:
        slow = [
            (row["scenario"], row["sanitize_overhead"])
            for row in rows
            if row["sanitize_overhead"] > args.max_sanitize_overhead
        ]
        if slow:
            print(
                "FAIL: sanitizer overhead above "
                f"{args.max_sanitize_overhead:.2f}x on: "
                + ", ".join(f"{name} ({ratio:.2f}x)" for name, ratio in slow),
                file=sys.stderr,
            )
            return 1
        print(
            "sanitizer overhead within "
            f"{args.max_sanitize_overhead:.2f}x on all scenarios"
        )

    mode = "tiny" if args.tiny else "default"
    if args.check_sanitize_overhead:
        print(f"\nsanitize-overhead check vs {args.baseline} [{mode}]:")
        status = check_sanitize_overhead(
            rows, Path(args.baseline), mode, args.sanitize_headroom
        )
        if status:
            return status
    if args.write_baseline:
        write_baseline(rows, mode, scenarios)
    if args.check_regression:
        print(f"\nregression check vs {args.baseline} [{mode}]:")
        status = check_regression(
            rows, Path(args.baseline), mode, args.regression_tolerance
        )
        if status:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main())
