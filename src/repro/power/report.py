"""Formatted power reporting.

Turns a :class:`~repro.power.accounting.PowerReport` (plus optional
per-channel detail) into the text summaries the examples and harness
print, including the paper's 409.6 W-style nominal network budget
computation (Section 4.2: 64 routers x 4 ports x 8 links x 0.2 W).
"""

from __future__ import annotations

from ..config import LinkConfig, NetworkConfig
from ..errors import ConfigError
from .accounting import PowerReport


def nominal_network_power_w(
    network: NetworkConfig | None = None, link: LinkConfig | None = None
) -> float:
    """The paper's nominal all-links-at-max network power.

    The paper quotes 64 routers x 4 ports x 8 links x 0.2 W = 409.6 W for
    its 8x8 mesh, counting four network ports per router regardless of
    mesh edges. We reproduce that convention here; the accountant's
    baseline uses the *actual* channel count (224 directed channels on an
    8x8 mesh) since normalized results are what the paper plots.
    """
    network = network if network is not None else NetworkConfig()
    link = link if link is not None else LinkConfig()
    model = link.build_power_model()
    table = link.build_table()
    per_link = model.level_power_w(table, table.max_level)
    ports_per_router = 2 * network.dimensions
    return network.node_count * ports_per_router * link.lanes * per_link


def format_power_report(report: PowerReport, *, label: str = "network") -> str:
    """Multi-line human-readable rendering of a power report."""
    if report.duration_s <= 0.0:
        raise ConfigError("report covers no time")
    lines = [
        f"power report ({label}, {report.duration_s * 1e6:.1f} us measured)",
        f"  mean link power     {report.mean_power_w:10.2f} W",
        f"  always-max baseline {report.baseline_power_w:10.2f} W",
        f"  normalized          {report.normalized:10.3f}",
        f"  savings factor      {report.savings_factor:10.2f} X",
        f"  voltage transitions {report.transition_count:10d}",
        f"  transition energy   {report.transition_energy_j * 1e6:10.2f} uJ",
    ]
    overhead = (
        report.transition_energy_j / (report.mean_power_w * report.duration_s)
        if report.mean_power_w > 0.0
        else 0.0
    )
    lines.append(f"  transition overhead {overhead:10.2%} of link energy")
    return "\n".join(lines)


def savings_by_component(
    report: PowerReport, *, router_core_power_w: float = 0.0
) -> dict[str, float]:
    """Network-level summary including an (optional) fixed router core.

    The paper ignores router-core power in its evaluation because it
    barely changes with DVS (Section 4.2); passing a nonzero core power
    shows how total savings dilute when the core is counted.
    """
    if router_core_power_w < 0.0:
        raise ConfigError("core power cannot be negative")
    total_with = report.mean_power_w + router_core_power_w
    total_baseline = report.baseline_power_w + router_core_power_w
    return {
        "link_savings_factor": report.savings_factor,
        "total_savings_factor": (
            total_baseline / total_with if total_with > 0.0 else float("inf")
        ),
        "core_share_of_baseline": (
            router_core_power_w / total_baseline if total_baseline else 0.0
        ),
    }
