"""The pure cycle kernel.

:class:`SimulationEngine` owns exactly three things: topology construction
(routers, DVS channels, per-port controllers, traffic), the event bucket
map, and the per-cycle step. It holds **no measurement state** — every
observable (latency, power, series, profiles, traces) attaches through the
:class:`~repro.instrument.bus.InstrumentBus` passed at construction, and
the measurement-phase facade lives in
:class:`~repro.network.simulator.Simulator`.

Time base: the router clock (1 cycle = 1 ns at the paper's 1 GHz). Each
cycle the kernel

1. dispatches scheduled events — flit arrivals into input buffers, credit
   returns, DVS channel phase boundaries (emitting ``on_transition`` bus
   events at the boundaries);
2. polls the traffic source and enqueues new packets in source queues
   (emitting ``on_packet_offered``);
3. closes DVS history windows when due (every H cycles) and runs the
   per-port controllers; schedules any transition phase boundaries they
   start;
4. dispatches ``on_window_close`` to windowed observers and ``on_cycle``
   to per-cycle observers;
5. steps every *active* router (ejection, routing/VC allocation, switch
   allocation, injection); tail-flit ejections reach observers through
   ``on_packet_ejected``.

Two scheduling optimizations make the kernel event-driven where the
workload allows, without changing a single simulated bit (see
``docs/performance.md`` for the bit-identity argument):

* **Active-router set.** Routers join a dirty set when they gain work
  (a flit arrival or a source-queue offer — the only engine-visible ways
  a router becomes non-idle) and leave it when their own step empties
  them. The per-cycle loop iterates the set in ascending node order,
  which is exactly the order of the old full scan over all N routers.
* **Quiescence fast-forward.** When the active set is empty, nothing can
  happen before the next *event horizon*: the earliest of the next
  bucket-map event, the next traffic injection
  (:meth:`~repro.traffic.base.TrafficSource.next_injection_cycle`), the
  next DVS history-window boundary, and the next observer window
  boundary. The kernel jumps ``now`` straight there, notifying
  ``on_idle_span`` observers of the skipped range. Observers that need
  every cycle (``on_cycle`` without ``on_idle_span``) disable skipping.

Events live in a bucket map keyed by cycle, which outperforms a heap when
almost every future cycle holds events. The kernel additionally maintains
outstanding-event counters (transport events, arrivals, and source-queue
packets), updated at schedule/dispatch/offer/inject, so drain-progress
checks are O(1) instead of walking every pending bucket and router.
Inter-router flit traversal is "emulated with message passing" exactly as
in the paper: a launched flit becomes an arrival event ``pipeline latency
+ serialization`` cycles later, so slow links lengthen hops and throttle
bandwidth.
"""

from __future__ import annotations

from ..config import DVSControlConfig, SimulationConfig
from ..core.controller import PortDVSController
from ..core.dvs_link import DVSChannel
from ..core.policy import (
    AdaptiveThresholdPolicy,
    DVSPolicy,
    HistoryDVSPolicy,
    LinkUtilizationOnlyPolicy,
    StaticLevelPolicy,
)
from ..errors import ConfigError, SimulationError
from ..instrument.bus import InstrumentBus, TransitionEvent
from .channel import NetworkChannel
from .packet import Packet
from .router import EVENT_ARRIVAL, EVENT_CREDIT, EVENT_PHASE, Router
from .routing import make_routing
from .topology import Topology


def _build_policy(dvs: DVSControlConfig) -> DVSPolicy:
    if dvs.policy == "history":
        return HistoryDVSPolicy(dvs.thresholds, weight=dvs.ewma_weight)
    if dvs.policy == "static":
        return StaticLevelPolicy(dvs.static_level)
    if dvs.policy == "lu_only":
        return LinkUtilizationOnlyPolicy(dvs.thresholds, weight=dvs.ewma_weight)
    if dvs.policy == "adaptive_threshold":
        return AdaptiveThresholdPolicy(dvs.thresholds, weight=dvs.ewma_weight)
    raise ConfigError(f"no policy object for {dvs.policy!r}")


class SimulationEngine:
    """One fully wired network: the simulated hardware, nothing else."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        traffic=None,
        bus: InstrumentBus | None = None,
        fast_forward: bool = True,
        sanitize: bool = False,
    ):
        self.config = config
        self.bus = bus if bus is not None else InstrumentBus()
        #: Allow quiescence skipping (bit-identical either way; set False
        #: to force cycle-by-cycle stepping, e.g. for A/B benchmarks).
        self.fast_forward = fast_forward
        #: Benchmark escape hatch: emulate the pre-active-set kernel that
        #: scanned all N routers every cycle.
        self.legacy_scan = False
        #: Diagnostics: cycles and spans elided by quiescence skipping.
        self.idle_cycles_skipped = 0
        self.idle_spans = 0
        net = config.network
        link = config.link

        self.topology = Topology(net.radix, net.dimensions, wraparound=net.wraparound)
        self.routing = make_routing(net.routing, self.topology, net.vcs_per_port)

        table = link.build_table()
        power_model = link.build_power_model()
        regulator = link.build_regulator()
        timing = link.build_timing()

        self._events: dict[int, list[tuple]] = {}
        self.now = 0
        # Outstanding-event counters, maintained at schedule/dispatch so
        # drain checks never walk the bucket map.
        self._pending_transport = 0
        self._pending_arrivals = 0
        # Source-queue packets not yet fully in the network, maintained at
        # offer/inject so drain checks never walk the routers.
        self._pending_source = 0
        #: Nodes whose router has work this cycle == exactly the non-idle
        #: routers (they gain work only through engine-visible arrivals and
        #: offers, and lose it only in their own step).
        self._active: set[int] = set()

        self.routers = [
            Router(
                node,
                self.topology,
                self.routing,
                vcs_per_port=net.vcs_per_port,
                buffers_per_vc=net.buffers_per_vc,
                credit_delay=net.credit_delay,
                schedule=self.schedule,
                packet_sink=self._on_packet_ejected,
                injected_sink=self._on_packet_injected,
            )
            for node in range(self.topology.node_count)
        ]

        if config.dvs.enabled and config.dvs.initial_level is not None:
            initial_level = config.dvs.initial_level
        else:
            initial_level = table.max_level

        self.channels: list[NetworkChannel] = []
        for spec in self.topology.channels:
            dvs_channel = DVSChannel(
                table,
                power_model,
                regulator,
                lanes=link.lanes,
                router_clock_hz=net.router_clock_hz,
                timing=timing,
                initial_level=initial_level,
            )
            channel = NetworkChannel(spec, dvs_channel, net.pipeline_latency)
            self.routers[spec.src_node].attach_channel(
                spec.src_port, channel, net.buffers_per_vc
            )
            self.channels.append(channel)
        #: DVS channel -> topology channel id, for transition events.
        self._channel_ids = {
            id(channel.dvs): channel.spec.channel_id for channel in self.channels
        }

        self.controllers: list[PortDVSController] = []
        if config.dvs.enabled:
            for channel in self.channels:
                spec = channel.spec
                tracker = self.routers[spec.dst_node].occupancy[spec.dst_port]
                if tracker is None:
                    raise SimulationError("network input port lacks a tracker")
                self.controllers.append(
                    PortDVSController(
                        channel.dvs,
                        _build_policy(config.dvs),
                        tracker,
                        window_cycles=config.dvs.history_window,
                        buffer_capacity=net.buffers_per_port,
                    )
                )

        if traffic is None:
            from ..traffic.base import make_traffic

            traffic = make_traffic(self.topology, config.workload)
        self.traffic = traffic

        #: The attached :class:`~repro.analysis.sanitizer.NetworkSanitizer`
        #: when ``sanitize=True``, else None. Lazily imported so the kernel
        #: has no analysis dependency unless asked for one.
        self.sanitizer = None
        if sanitize:
            from ..analysis.sanitizer import NetworkSanitizer

            self.sanitizer = NetworkSanitizer(self).attach()

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def schedule(self, cycle: int, event: tuple) -> None:
        """Queue *event* for dispatch at *cycle* (must be in the future)."""
        kind = event[0]
        if kind != EVENT_PHASE:
            self._pending_transport += 1
            if kind == EVENT_ARRIVAL:
                self._pending_arrivals += 1
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [event]
        else:
            bucket.append(event)

    def iter_scheduled_events(self):
        """Yield every pending ``(cycle, event)`` pair, unordered.

        A read-only view over the bucket map for diagnostics and the
        network sanitizer's conservation checks; callers must not mutate
        the event tuples or schedule/dispatch while iterating.
        """
        for cycle, bucket in self._events.items():
            for event in bucket:
                yield cycle, event

    def iter_active_routers(self):
        """Yield the routers in the current active set, in node order.

        A read-only view over the dirty-set scheduler for diagnostics
        and the network sanitizer: a router outside the set performed no
        work last cycle, so checker state derived from it is unchanged.
        """
        routers = self.routers
        for node in sorted(self._active):
            yield routers[node]

    def _on_packet_ejected(self, packet: Packet, now: int) -> None:
        for observer in self.bus.ejected_hooks:
            observer.on_packet_ejected(packet, now)

    def _on_packet_injected(self) -> None:
        self._pending_source -= 1

    def _emit_transition(self, channel: DVSChannel, now: int, kind: str) -> None:
        event = TransitionEvent(
            cycle=now,
            channel=self._channel_ids[id(channel)],
            kind=kind,
            phase=channel.phase.value,
            level=channel.level,
            voltage_level=channel.voltage_level,
            target_level=channel.target_level,
        )
        for observer in self.bus.transition_hooks:
            observer.on_transition(event)

    # ------------------------------------------------------------------
    # The cycle loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by one router cycle."""
        now = self.now
        routers = self.routers
        bus = self.bus
        transition_hooks = bus.transition_hooks

        events = self._events.pop(now, None)
        if events:
            active = self._active
            for event in events:
                kind = event[0]
                if kind == EVENT_ARRIVAL:
                    self._pending_transport -= 1
                    self._pending_arrivals -= 1
                    node = event[1]
                    routers[node].on_arrival(event[2], event[3], event[4], now)
                    active.add(node)
                elif kind == EVENT_CREDIT:
                    self._pending_transport -= 1
                    routers[event[1]].on_credit(event[2], event[3], event[4])
                else:  # EVENT_PHASE
                    channel = event[1]
                    ramps_before = channel.transition_count
                    next_cycle = channel.on_phase_end(now)
                    if next_cycle is not None:
                        self.schedule(next_cycle, (EVENT_PHASE, channel))
                    if transition_hooks:
                        self._emit_transition(channel, now, "phase_end")
                        if channel.transition_count > ramps_before:
                            self._emit_transition(channel, now, "ramp_start")

        pairs = self.traffic.injections(now)
        if pairs:
            flits_per_packet = self.config.network.flits_per_packet
            offered_hooks = bus.offered_hooks
            active = self._active
            for src, dst in pairs:
                packet = Packet(src, dst, flits_per_packet, now)
                routers[src].offer_packet(packet)
                active.add(src)
                self._pending_source += 1
                if offered_hooks:
                    for observer in offered_hooks:
                        observer.on_packet_offered(packet, now)

        if now:
            if self.controllers and now % self.config.dvs.history_window == 0:
                for controller in self.controllers:
                    channel = controller.channel
                    pending_before = channel.pending_event_cycle
                    ramps_before = channel.transition_count
                    controller.close_window(now)
                    pending_after = channel.pending_event_cycle
                    if pending_after is not None and pending_after != pending_before:
                        self.schedule(pending_after, (EVENT_PHASE, channel))
                    if transition_hooks and channel.transition_count > ramps_before:
                        self._emit_transition(channel, now, "ramp_start")
            window_hooks = bus.window_hooks
            if window_hooks:
                for observer in window_hooks:
                    if now % observer.window_cycles == 0:
                        observer.on_window_close(now)

        cycle_hooks = bus.cycle_hooks
        if cycle_hooks:
            for observer in cycle_hooks:
                observer.on_cycle(now)

        active = self._active
        if self.legacy_scan:
            # Pre-active-set behavior for A/B benchmarks: probe all N
            # routers, then resynchronize the set (order is identical —
            # both scans step non-idle routers in ascending node order).
            for router in routers:
                if router.total_buffered or router.inj_flits or router.inj_queue:
                    router.step(now)
            active.clear()
            for node, router in enumerate(routers):
                if router.total_buffered or router.inj_flits or router.inj_queue:
                    active.add(node)
        elif active:
            for node in sorted(active):
                router = routers[node]
                router.step(now)
                if not (
                    router.total_buffered or router.inj_flits or router.inj_queue
                ):
                    active.discard(node)

        self.now = now + 1

    def run_cycles(self, cycles: int) -> None:
        """Run *cycles* more cycles (fast-forwarding quiescent spans)."""
        self.run_until(self.now + cycles)

    def run_until(self, target: int) -> None:
        """Advance until ``now == target`` (fast-forwarding where possible)."""
        if not self.fast_forward:
            while self.now < target:
                self.step()
            return
        while self.now < target:
            self._advance_chunk(target)

    def _advance_chunk(self, target: int) -> None:
        """Advance at least one cycle toward *target*: skip or step.

        With an empty active set, every cycle strictly before the event
        horizon is provably a no-op — no events dispatch, the traffic
        source neither emits nor mutates, no window closes, no router
        steps — and all time-dependent accounting (link energy, occupancy
        integrals, idle-power accrual) is lazily integrated and therefore
        jump-safe. Skipping those cycles is bit-identical to stepping
        them.
        """
        if self.fast_forward and not self._active:
            horizon = self._quiescent_horizon()
            end = horizon if horizon < target else target
            now = self.now
            if end > now:
                span_hooks = self.bus.idle_span_hooks
                if span_hooks:
                    for observer in span_hooks:
                        observer.on_idle_span(now, end)
                self.idle_cycles_skipped += end - now
                self.idle_spans += 1
                self.now = end
                return
        self.step()

    def _quiescent_horizon(self) -> int | float:
        """Earliest cycle >= now at which anything could happen.

        Only meaningful while the active set is empty. Returns ``now``
        itself when fast-forward is not permitted (an attached observer
        needs every cycle, or the traffic source cannot predict its next
        injection), which makes the caller fall back to a plain step.
        """
        now = self.now
        bus = self.bus
        if bus.unskippable_cycle_hooks:
            return now
        next_injection = self.traffic.next_injection_cycle(now)
        if next_injection is None:
            return now
        horizon: int | float = next_injection
        if self._events:
            first_event = min(self._events)
            if first_event < horizon:
                horizon = first_event
        if self.controllers:
            window = self.config.dvs.history_window
            # Next cycle with now % window == 0. A boundary at `now` itself
            # is still pending (it closes inside step(now)) and correctly
            # forces a plain step — except cycle 0, where nothing closes.
            boundary = now + (-now % window)
            if boundary == 0:
                boundary = window
            if boundary < horizon:
                horizon = boundary
        for observer in bus.window_hooks:
            window = observer.window_cycles
            boundary = now + (-now % window)
            if boundary == 0:
                boundary = window
            if boundary < horizon:
                horizon = boundary
        return horizon

    # ------------------------------------------------------------------
    # Drain diagnostics
    # ------------------------------------------------------------------

    def flits_in_network(self) -> int:
        """Flits buffered in routers plus flits in flight on the wires."""
        buffered = sum(router.total_buffered for router in self.routers)
        return buffered + self._pending_arrivals

    def pending_source_packets(self) -> int:
        """Packets waiting in source queues (plus partially injected ones).

        O(1): the counter is incremented when a packet is offered and
        decremented when its tail flit enters the local input buffers
        (the router's ``injected_sink`` seam).
        """
        return self._pending_source

    def drain(self, max_cycles: int = 100_000) -> int:
        """Run with traffic as-is until the network empties; returns cycles.

        Intended for conservation tests: callers typically swap in an
        exhausted traffic source first. Raises if the network fails to
        drain within *max_cycles* (a deadlock or livelock).

        The emptiness probe is O(1) end-to-end: outstanding transport
        events, source-queue packets, and buffered flits are all tracked
        by counters (an empty active set implies every router buffer and
        injection queue is empty). The probe only needs evaluating at
        fast-forward chunk boundaries because nothing it reads can change
        across a skipped quiescent span.
        """
        start = self.now
        deadline = start + max_cycles
        while self.now < deadline:
            if (
                self._pending_transport == 0
                and not self._active
                and self._pending_source == 0
                and self.traffic.pending_injections() == 0
            ):
                return self.now - start
            if self.fast_forward:
                self._advance_chunk(deadline)
            else:
                self.step()
        raise SimulationError(f"network failed to drain within {max_cycles} cycles")
