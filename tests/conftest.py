"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.network.simulator import Simulator
from repro.traffic.trace import TraceReplaySource

#: A link whose transitions are fast enough for short test runs.
FAST_LINK = LinkConfig(
    voltage_transition_s=0.2e-6, frequency_transition_link_cycles=4
)


def small_config(
    *,
    radix: int = 3,
    policy: str = "none",
    rate: float = 0.1,
    vcs: int = 2,
    routing: str = "dor",
    wraparound: bool = False,
    warmup: int = 500,
    measure: int = 2_000,
    workload_kind: str = "uniform",
    seed: int = 1,
    **workload_kwargs,
) -> SimulationConfig:
    """A small, fast simulation config for tests."""
    return SimulationConfig(
        network=NetworkConfig(
            radix=radix,
            dimensions=2,
            vcs_per_port=vcs,
            buffers_per_port=16,
            routing=routing,
            wraparound=wraparound,
        ),
        link=FAST_LINK,
        dvs=DVSControlConfig(policy=policy),
        workload=WorkloadConfig(
            kind=workload_kind, injection_rate=rate, seed=seed, **workload_kwargs
        ),
        warmup_cycles=warmup,
        measure_cycles=measure,
    )


def trace_simulator(
    trace: list[tuple[int, int, int]], *, config: SimulationConfig | None = None
) -> Simulator:
    """A simulator fed by an explicit (cycle, src, dst) trace."""
    if config is None:
        config = small_config(rate=0.0001)
    simulator = Simulator(config)
    simulator.traffic = TraceReplaySource(
        simulator.topology, config.workload, trace
    )
    return simulator


@pytest.fixture(autouse=True)
def _sweep_cache_off(monkeypatch):
    """Keep tests hermetic: no on-disk sweep result reuse across tests or
    runs unless a test opts back in (by re-setting REPRO_CACHE itself)."""
    monkeypatch.setenv("REPRO_CACHE", "off")


@pytest.fixture(autouse=True)
def _chaos_off(monkeypatch):
    """No fault injection leaks between tests (or in from the caller's
    environment) unless a test installs a plan itself."""
    from repro.harness import chaos

    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    chaos.reset_plan()
    yield
    chaos.reset_plan()


@pytest.fixture
def mesh3_config():
    return small_config()
