"""Structured snapshots of network state.

:func:`snapshot` extracts a :class:`NetworkSnapshot` from a simulator —
per-channel and per-router activity, level distribution, buffering — as
plain data, for analysis code that should not reach into simulator
internals. Everything is computed on demand; taking a snapshot does not
perturb the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .simulator import Simulator


@dataclass(frozen=True, slots=True)
class ChannelStats:
    """Activity summary of one directed channel."""

    src_node: int
    src_port: int
    dst_node: int
    level: int
    flits_sent: int
    utilization: float
    transition_count: int
    dead_cycles: int


@dataclass(frozen=True, slots=True)
class RouterStats:
    """Activity summary of one router."""

    node: int
    flits_launched: int
    flits_ejected: int
    packets_ejected: int
    buffered_flits: int
    source_queue_depth: int


@dataclass(frozen=True, slots=True)
class NetworkSnapshot:
    """Whole-network state at one instant."""

    cycle: int
    channels: tuple[ChannelStats, ...]
    routers: tuple[RouterStats, ...]
    level_histogram: tuple[int, ...] = field(default=())

    @property
    def total_flits_in_buffers(self) -> int:
        return sum(router.buffered_flits for router in self.routers)

    @property
    def total_source_backlog(self) -> int:
        return sum(router.source_queue_depth for router in self.routers)

    @property
    def mean_level(self) -> float:
        if not self.channels:
            raise SimulationError("snapshot has no channels")
        return sum(ch.level for ch in self.channels) / len(self.channels)

    def busiest_channels(self, count: int = 5) -> tuple[ChannelStats, ...]:
        """The *count* channels with the most flits sent."""
        ranked = sorted(self.channels, key=lambda ch: ch.flits_sent, reverse=True)
        return tuple(ranked[:count])

    def hottest_routers(self, count: int = 5) -> tuple[RouterStats, ...]:
        """The *count* routers with the deepest buffering + backlog."""
        ranked = sorted(
            self.routers,
            key=lambda r: r.buffered_flits + r.source_queue_depth,
            reverse=True,
        )
        return tuple(ranked[:count])


def snapshot(simulator: Simulator) -> NetworkSnapshot:
    """Take a :class:`NetworkSnapshot` of *simulator* right now."""
    now = simulator.now
    channels = []
    level_count = len(simulator.channels[0].dvs.table) if simulator.channels else 0
    histogram = [0] * level_count
    for channel in simulator.channels:
        dvs = channel.dvs
        histogram[dvs.level] += 1
        utilization = dvs.busy_cycles_total / now if now > 0 else 0.0
        channels.append(
            ChannelStats(
                src_node=channel.spec.src_node,
                src_port=channel.spec.src_port,
                dst_node=channel.spec.dst_node,
                level=dvs.level,
                flits_sent=dvs.flits_sent,
                utilization=min(1.0, utilization),
                transition_count=dvs.transition_count,
                dead_cycles=dvs.dead_cycles,
            )
        )
    routers = [
        RouterStats(
            node=router.node,
            flits_launched=router.flits_launched,
            flits_ejected=router.flits_ejected,
            packets_ejected=router.packets_ejected,
            buffered_flits=router.total_buffered,
            source_queue_depth=len(router.inj_queue),
        )
        for router in simulator.routers
    ]
    return NetworkSnapshot(
        cycle=now,
        channels=tuple(channels),
        routers=tuple(routers),
        level_histogram=tuple(histogram),
    )
