"""Structural contracts of the remaining experiment functions (tiny scale)."""

import dataclasses
import math

import pytest

from repro.core.thresholds import TABLE2_SETTINGS
from repro.harness.experiments import (
    FigureResult,
    ablation_history_window,
    ablation_ideal_links,
    fig11_dvs_vs_nodvs_50tasks,
    fig12_congestion_power,
    fig13_threshold_latency,
    fig14_threshold_power,
    fig16_voltage_transition_sweep,
    fig17_frequency_transition_sweep,
    headline_summary,
    threshold_sweeps,
    workload_comparison,
)
from repro.harness.scales import SMOKE_SCALE

TINY = dataclasses.replace(
    SMOKE_SCALE,
    warmup_cycles=800,
    measure_cycles=2_500,
    sweep_rates=(0.2, 0.8),
)


class TestComparisonFigures:
    def test_fig11_structure(self):
        figure = fig11_dvs_vs_nodvs_50tasks(TINY)
        assert isinstance(figure, FigureResult)
        assert len(figure.rows) == 2
        assert figure.extras["summary"].max_savings > 1.0

    def test_fig12_structure(self):
        figure = fig12_congestion_power(TINY, rates=(0.3, 2.0))
        assert [row[0] for row in figure.rows] == [0.3, 2.0]
        powers = [row[3] for row in figure.rows]
        assert all(0.0 < p <= 1.2 for p in powers)

    def test_headline_structure(self):
        figure = headline_summary(TINY)
        metrics = [row[0] for row in figure.rows]
        assert "max power savings (X)" in metrics
        assert len(figure.rows) == 5


class TestThresholdFigures:
    @pytest.fixture(scope="class")
    def sweeps(self):
        settings = {"I": TABLE2_SETTINGS["I"], "VI": TABLE2_SETTINGS["VI"]}
        return threshold_sweeps(TINY, rates=(0.3, 0.8), settings=settings)

    def test_fig13_from_shared_sweeps(self, sweeps):
        figure = fig13_threshold_latency(TINY, sweeps=sweeps)
        assert figure.columns == ["rate", "I", "VI"]
        assert len(figure.rows) == 2

    def test_fig14_from_shared_sweeps(self, sweeps):
        figure = fig14_threshold_power(TINY, sweeps=sweeps)
        powers = [row[1:] for row in figure.rows]
        assert all(0.0 < p <= 1.2 for row in powers for p in row)

    def test_aggressive_setting_saves_at_least_as_much(self, sweeps):
        mean = {
            name: sum(p.normalized_power for p in points) / len(points)
            for name, points in sweeps.items()
        }
        assert mean["VI"] <= mean["I"] * 1.1


class TestTransitionFigures:
    def test_fig16_panel_structure(self):
        figure = fig16_voltage_transition_sweep(TINY, panel="d", rates=(0.4,))
        assert "Figure 16(d)" in figure.figure
        assert set(figure.extras["sweeps"]) == {
            "nodvs",
            "vt_1.0x",
            "vt_0.5x",
            "vt_0.1x",
        }

    def test_fig17_panel_structure(self):
        figure = fig17_frequency_transition_sweep(TINY, panel="c", rates=(0.4,))
        assert "Figure 17(c)" in figure.figure
        assert set(figure.extras["sweeps"]) == {"nodvs", "ft_100", "ft_50", "ft_10"}

    def test_fig17_bad_panel(self):
        with pytest.raises(Exception):
            fig17_frequency_transition_sweep(TINY, panel="q")


class TestExtensions:
    def test_ideal_links_structure(self):
        figure = ablation_ideal_links(TINY, rates=(0.4,))
        (row,) = figure.rows
        lat_conservative, lat_ideal = row[1], row[2]
        assert not math.isnan(lat_conservative)
        assert not math.isnan(lat_ideal)
        # Loose structural bound only: at this light load both variants sit
        # near baseline latency (ideal links even track the LU band more
        # tightly, trading a few cycles for power). The real shape claim —
        # ideal links cut the queueing-dominated latency cost — is asserted
        # by the default-scale bench.
        assert lat_ideal <= lat_conservative * 1.5

    def test_workload_comparison_structure(self):
        figure = workload_comparison(TINY, rate=0.6)
        names = [row[0] for row in figure.rows]
        assert names == ["two_level", "uniform", "permutation"]
        for row in figure.rows:
            assert row[4] < 1.1  # normalized power sane under DVS

    def test_history_window_rows(self):
        figure = ablation_history_window(TINY, rate=0.6, windows=(100, 400))
        assert [row[0] for row in figure.rows] == [100, 400]
