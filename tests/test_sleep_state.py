"""The sleep state below level 0: channel legality, energy, end-to-end runs."""

import pytest

from repro.config import DVSControlConfig
from repro.core.dvs_link import ChannelPhase, DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER, RegulatorModel
from repro.errors import ConfigError
from repro.harness.runner import build_simulator
from repro.harness.scales import SMOKE_SCALE


def make_channel(*, initial_level=0, wake_lockout_cycles=0, retention=0.3):
    return DVSChannel(
        PAPER_TABLE,
        PAPER_LINK_POWER,
        RegulatorModel(),
        lanes=8,
        router_clock_hz=1.0e9,
        timing=TransitionTiming(
            voltage_transition_s=1.0e-6,
            frequency_transition_link_cycles=10,
        ),
        initial_level=initial_level,
        retention_voltage_v=retention,
        wake_lockout_cycles=wake_lockout_cycles,
    )


class TestSleepLegality:
    def test_sleep_from_steady_level_zero(self):
        channel = make_channel()
        assert channel.request_sleep(100)
        assert channel.sleeping
        assert channel.locked
        assert not channel.functional
        assert channel.phase is ChannelPhase.SLEEP
        assert channel.sleep_count == 1
        assert channel.pending_event_cycle is None  # wake is demand-driven

    def test_sleep_refused_above_level_zero(self):
        channel = make_channel(initial_level=1)
        assert not channel.request_sleep(100)
        assert not channel.sleeping

    def test_sleep_refused_while_already_asleep(self):
        channel = make_channel()
        assert channel.request_sleep(100)
        assert not channel.request_sleep(200)
        assert channel.sleep_count == 1

    def test_sleep_refused_mid_transition(self):
        channel = make_channel(initial_level=1)
        assert channel.request_level(0, 50)  # frequency lock in flight
        assert not channel.request_sleep(50)

    def test_wake_only_from_sleep(self):
        channel = make_channel()
        assert not channel.request_wake(100)  # awake: nothing to do
        channel.request_sleep(100)
        assert channel.request_wake(200)
        assert channel.phase is ChannelPhase.WAKE
        assert channel.locked and not channel.sleeping
        assert channel.pending_event_cycle is not None

    def test_wake_completion_restores_steady_level_zero(self):
        channel = make_channel()
        channel.request_sleep(100)
        channel.request_wake(200)
        end = channel.pending_event_cycle
        channel.on_phase_end(end)
        assert channel.phase is ChannelPhase.STEADY
        assert channel.level == 0
        assert not channel.locked
        assert channel.dead_cycles >= end - 200

    def test_wake_lockout_blocks_resleep(self):
        channel = make_channel(wake_lockout_cycles=500)
        channel.request_sleep(100)
        channel.request_wake(200)
        end = channel.pending_event_cycle
        channel.on_phase_end(end)
        assert not channel.request_sleep(end + 1)  # inside the lockout
        assert channel.request_sleep(end + 500)  # lockout expired

    def test_retention_voltage_validation(self):
        with pytest.raises(ConfigError):
            make_channel(retention=0.0)
        with pytest.raises(ConfigError):
            make_channel(retention=PAPER_TABLE.voltage(0))
        with pytest.raises(ConfigError):
            DVSChannel(
                PAPER_TABLE,
                PAPER_LINK_POWER,
                wake_lockout_cycles=-1,
            )


class TestSleepEnergy:
    def test_sleep_power_is_retention_leakage(self):
        channel = make_channel()
        channel.request_sleep(100)
        expected = PAPER_LINK_POWER.sleep_power_w(0.3, 8)
        assert channel.power_w == pytest.approx(expected)
        # Far below the level-0 operating power.
        assert channel.power_w < PAPER_LINK_POWER.channel_power_w(
            PAPER_TABLE, 0, 8
        )

    def test_sleep_entry_and_wake_each_charge_one_transition(self):
        channel = make_channel()
        regulator = channel.regulator
        v0 = PAPER_TABLE.voltage(0)
        base = channel.transition_energy_j
        channel.request_sleep(100)
        entry = regulator.transition_energy_j(v0, 0.3)
        assert channel.transition_energy_j == pytest.approx(base + entry)
        channel.request_wake(200)
        wake = regulator.transition_energy_j(0.3, v0)
        assert channel.transition_energy_j == pytest.approx(base + entry + wake)
        assert channel.transition_count == 2

    def test_asleep_span_billed_at_leakage(self):
        channel = make_channel()
        channel.request_sleep(1000)
        before = channel.link_energy_j
        channel.request_wake(2000)  # accrues the 1000-cycle nap
        leakage = PAPER_LINK_POWER.sleep_power_w(0.3, 8) * (1000 / 1.0e9)
        assert channel.link_energy_j - before == pytest.approx(leakage)
        assert channel.sleep_cycles == 1000

    def test_finalize_mid_sleep_is_idempotent(self):
        channel = make_channel()
        channel.request_sleep(100)
        channel.finalize(600)
        assert channel.sleep_cycles == 500
        channel.finalize(600)
        assert channel.sleep_cycles == 500
        channel.finalize(700)
        assert channel.sleep_cycles == 600


class TestChargeReplay:
    def test_replay_extends_busy_and_bills_energy(self):
        channel = make_channel(initial_level=9)
        before = channel.link_energy_j
        channel.charge_replay(4, 100.0)
        assert channel.replay_count == 4
        occupancy = 4 * channel.serialization_cycles
        assert channel.busy_until == pytest.approx(100.0 + occupancy)
        billed = channel.power_w * (occupancy / 1.0e9)
        assert channel.replay_energy_j == pytest.approx(billed)
        assert channel.link_energy_j - before == pytest.approx(billed)

    def test_replay_queues_behind_inflight_traffic(self):
        channel = make_channel(initial_level=9)
        channel.send_flit(100.0)
        wire_free = channel.busy_until
        channel.charge_replay(2, 100.0)
        assert channel.busy_until == pytest.approx(
            wire_free + 2 * channel.serialization_cycles
        )

    def test_zero_flits_is_a_no_op(self):
        channel = make_channel()
        channel.charge_replay(0, 100.0)
        assert channel.replay_count == 0
        assert channel.replay_energy_j == 0.0


class TestEndToEnd:
    def test_link_shutdown_run_passes_sanitizer(self):
        config = SMOKE_SCALE.simulation(0.05, policy="link_shutdown")
        simulator = build_simulator(config, sanitize=True)
        result = simulator.run()
        assert simulator.sanitizer is not None
        assert not simulator.sanitizer.violations
        channels = [c.channel for c in simulator.controllers]
        assert sum(c.sleep_count for c in channels) > 0
        assert sum(c.sleep_cycles for c in channels) > 0
        # Sleeping must beat the plain history policy's floor at this load.
        assert result.power.normalized < 0.5

    def test_error_correction_run_passes_sanitizer_and_replays(self):
        config = SMOKE_SCALE.simulation(
            0.5,
            policy="error_correction",
            # Aggressive error model so replays actually happen in a
            # short smoke run.
            dvs=DVSControlConfig(
                policy="error_correction",
                params={"error_rate": 0.05, "probe_windows": 2},
            ),
        )
        simulator = build_simulator(config, sanitize=True)
        simulator.run()
        assert not simulator.sanitizer.violations
        channels = [c.channel for c in simulator.controllers]
        assert sum(c.replay_count for c in channels) > 0

    def test_sleep_config_knobs_reach_the_channels(self):
        config = SMOKE_SCALE.simulation(
            0.05,
            policy="link_shutdown",
            link_overrides={
                "sleep_retention_voltage_v": 0.25,
                "sleep_wake_lockout_cycles": 123,
            },
        )
        simulator = build_simulator(config)
        channel = simulator.controllers[0].channel
        assert channel.retention_voltage_v == 0.25
        assert channel.wake_lockout_cycles == 123

    def test_non_sleep_policies_never_sleep(self):
        config = SMOKE_SCALE.simulation(0.05, policy="history")
        simulator = build_simulator(config, sanitize=True)
        simulator.run()
        channels = [c.channel for c in simulator.controllers]
        assert sum(c.sleep_count for c in channels) == 0
