"""The deterministic chaos harness, end to end through the backends."""

from __future__ import annotations

import os

import pytest

from repro.errors import ChaosError, SweepExecutionError
from repro.harness import cache as cache_mod
from repro.harness import chaos
from repro.harness.backends import ProcessPoolBackend
from repro.harness.chaos import (
    CHAOS_ENV,
    ChaosPlan,
    active_plan,
    inject_point_fault,
    inject_store_fault,
    set_plan,
)
from repro.harness.resilience import FailureReport, RetryPolicy, run_point
from repro.harness.sweep import rate_sweep

from .conftest import small_config


def _config(rate: float = 0.2):
    return small_config(rate=rate, warmup=100, measure=400)


class TestChaosPlan:
    def test_rates_validated(self):
        with pytest.raises(ChaosError):
            ChaosPlan(crash_rate=1.5)
        with pytest.raises(ChaosError):
            ChaosPlan(slow_s=-1.0)

    def test_fault_selection_is_deterministic_and_seeded(self):
        plan = ChaosPlan(seed=3, raise_rate=0.5)
        decisions = [plan.fault_for(f"fp-{i}") for i in range(50)]
        assert decisions == [plan.fault_for(f"fp-{i}") for i in range(50)]
        assert "raise" in decisions and None in decisions
        reseeded = ChaosPlan(seed=4, raise_rate=0.5)
        assert decisions != [reseeded.fault_for(f"fp-{i}") for i in range(50)]

    def test_rate_extremes(self):
        everything = ChaosPlan(crash_rate=1.0, raise_rate=1.0, slow_rate=1.0)
        assert everything.fault_for("any") == "crash"  # precedence order
        nothing = ChaosPlan()
        assert nothing.fault_for("any") is None
        assert not nothing.should_corrupt("any")

    def test_claim_is_once_only_with_a_state_dir(self, tmp_path):
        plan = ChaosPlan(raise_rate=1.0, state_dir=str(tmp_path))
        assert plan.claim("raise", "f" * 64)
        assert not plan.claim("raise", "f" * 64)
        assert plan.claim("raise", "0" * 64)  # a different point
        fired = plan.fired()
        assert len(fired) == 2
        assert all(marker.startswith("raise-") for marker in fired)
        assert len(set(fired)) == 2  # distinct points, distinct markers

    def test_markers_distinguish_json_fingerprints_sharing_a_prefix(
        self, tmp_path
    ):
        """Config fingerprints are canonical JSON: two rates of the same
        sweep share a long common prefix, so markers must hash."""
        plan = ChaosPlan(raise_rate=1.0, state_dir=str(tmp_path))
        near = _config(0.2).fingerprint()
        far = _config(0.4).fingerprint()
        assert plan.claim("raise", near)
        assert plan.claim("raise", far)  # must NOT collide with `near`

    def test_claim_always_granted_without_state(self, tmp_path):
        assert ChaosPlan(raise_rate=1.0).claim("raise", "f" * 64)
        repeating = ChaosPlan(raise_rate=1.0, once=False, state_dir=str(tmp_path))
        assert repeating.claim("raise", "f" * 64)
        assert repeating.claim("raise", "f" * 64)

    def test_write_read_roundtrip(self, tmp_path):
        plan = ChaosPlan(seed=9, crash_rate=0.25, state_dir=str(tmp_path))
        path = plan.write(tmp_path / "plan.json")
        assert ChaosPlan.read(path) == plan

    def test_read_rejects_bad_plans(self, tmp_path):
        with pytest.raises(ChaosError, match="cannot load"):
            ChaosPlan.read(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ChaosError, match="not a JSON object"):
            ChaosPlan.read(bad)
        unknown = tmp_path / "unknown.json"
        unknown.write_text('{"seed": 1, "explosion_rate": 1.0}')
        with pytest.raises(ChaosError, match="unknown keys"):
            ChaosPlan.read(unknown)


class TestActivation:
    def test_no_plan_by_default(self):
        assert active_plan() is None
        inject_point_fault("f" * 64)  # no-op
        inject_store_fault("f" * 64, "/nonexistent")  # no-op

    def test_env_plan_loaded_and_cached(self, tmp_path, monkeypatch):
        plan = ChaosPlan(seed=5, raise_rate=1.0)
        path = plan.write(tmp_path / "plan.json")
        monkeypatch.setenv(CHAOS_ENV, str(path))
        chaos.reset_plan()
        assert active_plan() == plan
        assert active_plan() is active_plan()  # parsed once

    def test_bad_env_plan_fails_loudly(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, str(tmp_path / "missing.json"))
        chaos.reset_plan()
        with pytest.raises(ChaosError):
            active_plan()

    def test_set_plan_overrides_env(self, tmp_path, monkeypatch):
        path = ChaosPlan(raise_rate=1.0).write(tmp_path / "plan.json")
        monkeypatch.setenv(CHAOS_ENV, str(path))
        set_plan(None)
        assert active_plan() is None


class TestInjection:
    def test_raise_fault_raises_chaos_error(self):
        set_plan(ChaosPlan(seed=2, raise_rate=1.0))
        with pytest.raises(ChaosError, match="seed=2"):
            inject_point_fault("f" * 64)

    def test_crash_degrades_to_raise_in_the_authoring_process(self):
        # Were this a real os._exit, the test process would vanish here.
        set_plan(ChaosPlan(crash_rate=1.0, main_pid=os.getpid()))
        with pytest.raises(ChaosError):
            inject_point_fault("f" * 64)

    def test_slow_fault_only_delays(self):
        set_plan(ChaosPlan(slow_rate=1.0, slow_s=0.0))
        result, failure = run_point(
            _config(), runner=lambda config: "ok", sleep=lambda s: None
        )
        assert (result, failure) == ("ok", None)

    def test_slow_fault_trips_timeout_then_recovers(self, tmp_path):
        set_plan(
            ChaosPlan(slow_rate=1.0, slow_s=5.0, state_dir=str(tmp_path))
        )
        result, incident = run_point(
            _config(),
            RetryPolicy(max_attempts=2, backoff_base_s=0.0, timeout_s=0.05),
            runner=lambda config: "ok",
            sleep=lambda s: None,
        )
        assert result == "ok"
        assert incident.recovered and incident.outcome == "timeout"

    def test_store_fault_truncates_the_entry(self, tmp_path):
        victim = tmp_path / "entry.pkl"
        victim.write_bytes(b"x" * 99)
        set_plan(ChaosPlan(corrupt_rate=1.0, once=False))
        inject_store_fault("f" * 64, victim)
        assert victim.stat().st_size == 33

    def test_once_markers_make_faults_fire_exactly_once(self, tmp_path):
        set_plan(ChaosPlan(raise_rate=1.0, state_dir=str(tmp_path)))
        with pytest.raises(ChaosError):
            inject_point_fault("f" * 64)
        inject_point_fault("f" * 64)  # second attempt runs clean


class TestSerialRecovery:
    def test_raise_faults_recover_bit_identically(self, tmp_path):
        config = _config()
        rates = (0.2, 0.4)
        expected = rate_sweep(config, rates)
        set_plan(ChaosPlan(seed=1, raise_rate=1.0, state_dir=str(tmp_path)))
        report = FailureReport()
        points = rate_sweep(config, rates, failures=report)
        assert points == expected
        assert report.ok
        assert len(report.incidents) == len(rates)  # every point retried once


class TestPoolRecovery:
    """Worker crashes, cross-process via the REPRO_CHAOS environment."""

    def _chaos_env(self, plan: ChaosPlan, tmp_path, monkeypatch) -> None:
        path = plan.write(tmp_path / "plan.json")
        monkeypatch.setenv(CHAOS_ENV, str(path))
        chaos.reset_plan()

    def test_acceptance_crash_plus_corruption_is_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """ISSUE acceptance: a sweep that loses a worker at a seeded point
        AND has one cache entry truncated at store time completes with
        results bit-identical to a fault-free run, reports the injected
        faults, and a follow-up run quarantines + repairs the bad entry."""
        config = _config()
        rates = (0.2, 0.3, 0.4, 0.5)
        fingerprints = [config.with_rate(r).fingerprint() for r in rates]
        expected = rate_sweep(config, rates)  # fault-free, cache off

        # Pick a seed that crashes exactly one point and corrupts exactly
        # one stored entry — purely from the plan, before anything runs.
        for seed in range(500):
            probe = ChaosPlan(seed=seed, crash_rate=0.25, corrupt_rate=0.25)
            faults = [probe.fault_for(fp) for fp in fingerprints]
            corrupts = [probe.should_corrupt(fp) for fp in fingerprints]
            if faults.count("crash") == 1 and corrupts.count(True) == 1:
                break
        else:  # pragma: no cover - seed search is deterministic
            pytest.fail("no suitable chaos seed in range")
        plan = ChaosPlan(
            seed=seed, crash_rate=0.25, corrupt_rate=0.25,
            state_dir=str(tmp_path / "chaos"), main_pid=os.getpid(),
        )
        self._chaos_env(plan, tmp_path, monkeypatch)
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        cache_mod.reset_cache()

        report = FailureReport()
        points = rate_sweep(
            config, rates,
            backend=ProcessPoolBackend(2, chunksize=1),
            failures=report,
        )
        assert points == expected  # bit-identical despite the faults
        assert report.ok
        assert any(
            f.outcome == "worker-crash" and f.recovered
            for f in report.incidents
        )
        fired = plan.fired()
        assert len([m for m in fired if m.startswith("crash-")]) == 1
        assert len([m for m in fired if m.startswith("corrupt-")]) == 1

        # The truncated entry is quarantined and recomputed on the next
        # run; everything else replays from the checkpoint cache.
        cache = cache_mod.get_cache()
        assert (cache.hits, cache.misses) == (0, len(rates))
        again = rate_sweep(config, rates)
        assert again == expected
        assert cache.corrupted == 1
        assert (cache.hits, cache.misses) == (len(rates) - 1, len(rates) + 1)
        assert "quarantined" in cache.describe()
        cache_mod.reset_cache()

    def test_unrecoverable_crashes_degrade_to_partial_results(
        self, tmp_path, monkeypatch
    ):
        self._chaos_env(ChaosPlan(crash_rate=1.0, once=False), tmp_path, monkeypatch)
        configs = [_config(0.2), _config(0.3)]
        backend = ProcessPoolBackend(2, chunksize=2, max_pool_respawns=1)
        results, report = backend.run(configs)
        assert results == [None, None]
        assert not report.ok
        assert all(f.outcome == "worker-crash" for f in report.failures)
        with pytest.raises(SweepExecutionError, match="worker-crash"):
            backend.map_configs(configs)
