"""Tests for the content-addressed on-disk sweep result cache."""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.harness import cache as cache_mod
from repro.harness.backends import ProcessPoolBackend, SerialBackend
from repro.harness.cache import SweepCache
from repro.harness.sweep import (
    rate_sweep,
    require_resumable_cache,
    resume_preview,
)

from .conftest import small_config


def _boom(*args, **kwargs):  # pragma: no cover - must never run
    raise AssertionError("simulated a config that should have been cached")


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point REPRO_CACHE at a fresh directory (overriding the autouse
    'off') and guarantee no explicit override leaks between tests."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    cache_mod.reset_cache()
    yield tmp_path
    cache_mod.reset_cache()


class TestCacheSelection:
    def test_env_off_disables(self, monkeypatch):
        cache_mod.reset_cache()
        for value in ("off", "0", "no", "none", "disabled", "OFF"):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert cache_mod.get_cache() is None

    def test_env_path_selects_directory(self, cache_dir):
        cache = cache_mod.get_cache()
        assert cache is not None
        assert cache.root == cache_dir

    def test_unset_env_uses_xdg_default(self, monkeypatch, tmp_path):
        cache_mod.reset_cache()
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        cache = cache_mod.cache_from_env()
        assert cache is not None
        assert cache.root == tmp_path / "repro" / "sweeps"

    def test_set_cache_overrides_env(self, cache_dir, tmp_path):
        override = SweepCache(tmp_path / "elsewhere")
        cache_mod.set_cache(override)
        assert cache_mod.get_cache() is override
        cache_mod.set_cache(None)
        assert cache_mod.get_cache() is None
        cache_mod.reset_cache()
        assert cache_mod.get_cache() is not None

    def test_counters_accumulate_per_root(self, cache_dir):
        assert cache_mod.get_cache() is cache_mod.get_cache()


class TestCachedSweeps:
    def test_second_run_is_all_hits_and_simulation_free(
        self, cache_dir, monkeypatch
    ):
        config = small_config(rate=0.2, warmup=200, measure=600)
        rates = (0.2, 0.4)
        first = rate_sweep(config, rates)
        cache = cache_mod.get_cache()
        assert (cache.hits, cache.misses) == (0, 2)
        # A re-run must be answered purely from disk.
        monkeypatch.setattr("repro.harness.backends.run_simulation", _boom)
        second = rate_sweep(config, rates)
        assert second == first
        assert (cache.hits, cache.misses) == (2, 2)

    def test_results_identical_with_and_without_cache(
        self, cache_dir, monkeypatch
    ):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cached = rate_sweep(config, (0.3,))
        monkeypatch.setenv("REPRO_CACHE", "off")
        uncached = rate_sweep(config, (0.3,))
        assert cached == uncached

    def test_pool_backend_uses_the_cache(self, cache_dir, monkeypatch):
        config = small_config(rate=0.2, warmup=200, measure=600)
        backend = ProcessPoolBackend(2, chunksize=1)
        first = rate_sweep(config, (0.2, 0.4), backend=backend)
        monkeypatch.setattr("repro.harness.backends.run_simulation", _boom)
        # Serial backend hits entries written by the pooled run.
        second = rate_sweep(config, (0.2, 0.4), backend=SerialBackend())
        assert second == first

    def test_different_seed_is_a_miss(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        rate_sweep(config, (0.2,))
        rate_sweep(small_config(rate=0.2, warmup=200, measure=600, seed=2), (0.2,))
        cache = cache_mod.get_cache()
        assert cache.misses == 2
        assert cache.hits == 0


class TestEntryIntegrity:
    def test_epoch_mismatch_is_a_miss(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        old = SweepCache(cache_dir, epoch="some-older-epoch")
        old.store(config, "stale-result")
        assert cache_mod.get_cache().load(config) is None

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        cache.store(config, "fine")
        path = cache.entry_path(config)
        path.write_bytes(b"not a pickle")
        assert cache.load(config) is None

    def test_fingerprint_mismatch_is_a_miss(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        cache.store(config, "fine")
        path = cache.entry_path(config)
        path.write_bytes(
            pickle.dumps({"fingerprint": "something-else", "result": "wrong"})
        )
        assert cache.load(config) is None

    def test_store_roundtrip_is_exact(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        payload = {"floats": [0.1, 2.5e-7], "nested": (1, "x")}
        cache.store(config, payload)
        assert cache.load(config) == payload

    def test_unwritable_root_degrades_to_no_caching(self, monkeypatch, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("occupied")
        cache = SweepCache(blocked / "sub")
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache.store(config, "result")  # must not raise
        assert cache.load(config) is None

    def test_short_batch_from_backend_raises(self, cache_dir):
        cache = cache_mod.get_cache()
        config = small_config(rate=0.2, warmup=200, measure=600)
        with pytest.raises(ExperimentError):
            cache.map_cached([config], lambda missing: [])


class TestQuarantine:
    def test_corrupt_entry_is_renamed_and_counted(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        cache.store(config, "fine")
        path = cache.entry_path(config)
        path.write_bytes(b"not a pickle")
        assert cache.load(config) is None
        assert cache.corrupted == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # The quarantined entry is out of the way: recompute-and-store
        # repairs the slot and the next load hits.
        cache.store(config, "repaired")
        assert cache.load(config) == "repaired"
        assert cache.corrupted == 1

    def test_missing_entry_is_a_plain_miss_not_corruption(self, cache_dir):
        cache = cache_mod.get_cache()
        assert cache.load(small_config(rate=0.2)) is None
        assert cache.corrupted == 0

    def test_describe_reports_quarantined_entries(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        assert "quarantined" not in cache.describe()
        cache.store(config, "fine")
        cache.entry_path(config).write_bytes(b"junk")
        cache.load(config)
        assert "1 corrupted entries quarantined" in cache.describe()


class TestStreamingCheckpoints:
    def test_results_stored_as_produced_not_at_batch_end(self, cache_dir):
        """Satellite acceptance: an interrupt at point N keeps points
        1..N-1 on disk (the old all-or-nothing batch store lost them)."""
        cache = cache_mod.get_cache()
        configs = [
            small_config(rate=rate, warmup=200, measure=600)
            for rate in (0.1, 0.2, 0.3)
        ]

        def interrupted(missing):
            yield "first"
            yield "second"
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            cache.map_cached(configs, interrupted)
        assert cache.load(configs[0]) == "first"
        assert cache.load(configs[1]) == "second"
        assert cache.load(configs[2]) is None

    def test_none_results_pass_through_unstored(self, cache_dir):
        cache = cache_mod.get_cache()
        configs = [
            small_config(rate=rate, warmup=200, measure=600)
            for rate in (0.1, 0.2)
        ]
        results = cache.map_cached(configs, lambda missing: ["ok", None])
        assert results == ["ok", None]
        assert cache.load(configs[1]) is None

    def test_overlong_batch_from_backend_raises(self, cache_dir):
        cache = cache_mod.get_cache()
        config = small_config(rate=0.2, warmup=200, measure=600)
        with pytest.raises(ExperimentError, match="more than"):
            cache.map_cached([config], lambda missing: ["a", "b"])

    def test_partition_splits_hits_from_misses(self, cache_dir):
        cache = cache_mod.get_cache()
        configs = [
            small_config(rate=rate, warmup=200, measure=600)
            for rate in (0.1, 0.2, 0.3)
        ]
        cache.store(configs[1], "cached")
        results, miss_indices, miss_configs = cache.partition(configs)
        assert results == [None, "cached", None]
        assert miss_indices == [0, 2]
        assert miss_configs == [configs[0], configs[2]]
        assert (cache.hits, cache.misses) == (1, 2)


class TestResume:
    def test_resume_requires_the_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        with pytest.raises(ExperimentError, match="resume requires"):
            require_resumable_cache()
        config = small_config(rate=0.2, warmup=200, measure=600)
        with pytest.raises(ExperimentError, match="resume requires"):
            rate_sweep(config, (0.2,), resume=True)

    def test_resume_recomputes_only_missing_points(self, cache_dir, monkeypatch):
        """ISSUE acceptance: an interrupted sweep resumed later replays
        checkpointed points and recomputes only the missing ones —
        verified via the cache hit/miss counters."""
        config = small_config(rate=0.2, warmup=200, measure=600)
        rates = (0.2, 0.3, 0.4, 0.5)
        monkeypatch.setenv("REPRO_CACHE", "off")
        expected = rate_sweep(config, rates)
        monkeypatch.setenv("REPRO_CACHE", str(cache_dir))

        # "Interrupted" campaign: only the first two points completed.
        rate_sweep(config, rates[:2])
        checkpointed, total = resume_preview(
            config.with_rate(rate) for rate in rates
        )
        assert (checkpointed, total) == (2, 4)

        cache = cache_mod.get_cache()
        hits, misses = cache.hits, cache.misses
        resumed = rate_sweep(config, rates, resume=True)
        assert resumed == expected  # bit-identical to an uninterrupted run
        assert cache.hits - hits == 2  # replayed from checkpoints
        assert cache.misses - misses == 2  # recomputed

    def test_resume_preview_requires_the_cache_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        with pytest.raises(ExperimentError):
            resume_preview([small_config(rate=0.2)])

    def test_contains_is_a_cheap_probe(self, cache_dir):
        cache = cache_mod.get_cache()
        config = small_config(rate=0.2, warmup=200, measure=600)
        assert not cache.contains(config)
        cache.store(config, "there")
        assert cache.contains(config)
        assert (cache.hits, cache.misses) == (0, 0)  # no counter bumps


class TestErrorPaths:
    def test_truncated_entry_is_a_miss(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        cache.store(config, {"rows": list(range(100))})
        path = cache.entry_path(config)
        intact = path.read_bytes()
        for cut in (0, 1, len(intact) // 2, len(intact) - 1):
            path.write_bytes(intact[:cut])
            assert cache.load(config) is None, f"truncated at {cut} bytes"
        path.write_bytes(intact)
        assert cache.load(config) == {"rows": list(range(100))}

    def test_entry_replaced_by_directory_is_a_miss(self, cache_dir):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        cache.store(config, "fine")
        path = cache.entry_path(config)
        path.unlink()
        path.mkdir()
        assert cache.load(config) is None

    def test_concurrent_stores_never_expose_a_torn_entry(self, cache_dir):
        import threading

        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()
        payloads = [{"writer": i, "rows": [i] * 500} for i in range(8)]
        start = threading.Barrier(len(payloads) + 1)
        failures: list[str] = []

        def write(payload):
            start.wait()
            for _ in range(20):
                cache.store(config, payload)

        def read():
            start.wait()
            for _ in range(200):
                value = cache.load(config)
                if value is not None and value not in payloads:
                    failures.append(f"torn read: {value!r}")
                    return

        threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
        threads.append(threading.Thread(target=read))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        # The winner is one complete payload, and no temp files linger.
        assert cache.load(config) in payloads
        assert not list(cache_dir.rglob(".tmp-*"))

    def test_failed_store_cleans_up_its_temp_file(self, cache_dir, monkeypatch):
        config = small_config(rate=0.2, warmup=200, measure=600)
        cache = cache_mod.get_cache()

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.harness.cache.os.replace", boom)
        cache.store(config, "result")  # swallowed
        monkeypatch.undo()
        assert cache.load(config) is None
        assert not list(cache_dir.rglob(".tmp-*"))


class TestCLIIntegration:
    def test_sweep_prints_cache_stats(self, cache_dir, capsys):
        code = main(["sweep", "--rates", "0.2", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep cache:" in out
        assert "misses" in out

    def test_no_cache_flag_disables_and_resets(self, cache_dir, capsys):
        code = main(["sweep", "--rates", "0.2", "--scale", "smoke", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep cache: disabled" in out
        # The override must not leak past the command.
        assert cache_mod.get_cache() is not None
        assert not any(cache_dir.rglob("*.pkl"))
