"""Integration tests for the full simulator."""

import pytest

from repro.config import DVSControlConfig
from repro.errors import ConfigError, SimulationError
from repro.network.simulator import Simulator
from repro.traffic.trace import TraceReplaySource

from .conftest import small_config, trace_simulator


class TestSinglePacket:
    def test_one_hop_latency(self):
        """Zero-load latency of a 1-hop, 5-flit packet: injection + one
        pipeline traversal + tail serialization at full speed."""
        simulator = trace_simulator([(0, 0, 1)])
        simulator.begin_measurement()
        simulator.drain()
        assert simulator.total_ejected_packets == 1
        stats = simulator.latency.stats()
        pipeline = simulator.config.network.pipeline_depth
        flits = simulator.config.network.flits_per_packet
        assert stats.mean == pipeline + flits

    def test_multi_hop_latency_scales_with_distance(self):
        config = small_config()
        one = trace_simulator([(0, 0, 1)], config=config)
        one.begin_measurement()
        one.drain()
        far = trace_simulator([(0, 0, 2)], config=config)  # 2 hops in 3x3
        far.begin_measurement()
        far.drain()
        pipeline = config.network.pipeline_depth
        assert far.latency.stats().mean == one.latency.stats().mean + pipeline

    def test_flits_arrive_in_order(self):
        simulator = trace_simulator([(0, 0, 4)])
        simulator.begin_measurement()
        simulator.drain()
        assert simulator.total_ejected_packets == 1


class TestConservation:
    @pytest.mark.parametrize("kind,rate", [("uniform", 0.3), ("two_level", 0.3)])
    def test_every_offered_packet_is_delivered(self, kind, rate):
        config = small_config(
            rate=rate,
            workload_kind=kind,
            measure=3_000,
            average_tasks=5,
            average_task_duration_s=3.0e-6,
            onoff_sources_per_task=4,
        ) if kind == "two_level" else small_config(rate=rate, measure=3_000)
        simulator = Simulator(config)
        simulator.begin_measurement()
        simulator.run_cycles(3_000)
        offered = simulator.traffic.packets_offered
        # Stop traffic and drain.
        simulator.traffic = TraceReplaySource(
            simulator.topology, config.workload, []
        )
        simulator.drain(max_cycles=50_000)
        assert simulator.total_ejected_packets == offered
        assert simulator.flits_in_network() == 0

    def test_conservation_with_dvs_enabled(self):
        config = small_config(policy="history", rate=0.4, measure=4_000)
        simulator = Simulator(config)
        simulator.begin_measurement()
        simulator.run_cycles(4_000)
        offered = simulator.traffic.packets_offered
        simulator.traffic = TraceReplaySource(simulator.topology, config.workload, [])
        simulator.drain(max_cycles=100_000)
        assert simulator.total_ejected_packets == offered

    def test_conservation_adaptive_routing(self):
        config = small_config(routing="adaptive", rate=0.5, measure=3_000)
        simulator = Simulator(config)
        simulator.run_cycles(3_000)
        offered = simulator.traffic.packets_offered
        simulator.traffic = TraceReplaySource(simulator.topology, config.workload, [])
        simulator.drain(max_cycles=100_000)
        assert simulator.total_ejected_packets == offered

    def test_conservation_torus_dateline(self):
        config = small_config(wraparound=True, rate=0.5, measure=3_000, radix=4)
        simulator = Simulator(config)
        simulator.run_cycles(3_000)
        offered = simulator.traffic.packets_offered
        simulator.traffic = TraceReplaySource(simulator.topology, config.workload, [])
        simulator.drain(max_cycles=100_000)
        assert simulator.total_ejected_packets == offered


class TestSingleVCOrdering:
    def test_packets_same_pair_stay_ordered_with_one_vc(self):
        """With one VC and deterministic routing, delivery is FIFO per pair."""
        config = small_config(vcs=1)
        trace = [(i * 3, 0, 8) for i in range(10)]
        simulator = trace_simulator(trace, config=config)
        order = []
        original = simulator._on_packet_ejected

        def spy(packet, now):
            order.append(packet.packet_id)
            original(packet, now)

        for router in simulator.routers:
            router.packet_sink = spy
        simulator.drain(max_cycles=20_000)
        assert order == sorted(order)
        assert len(order) == 10


class TestMeasurement:
    def test_result_fields(self, mesh3_config):
        result = Simulator(mesh3_config).run()
        assert result.measure_cycles == mesh3_config.measure_cycles
        assert result.offered_packets >= 0
        assert result.latency.count > 0
        assert result.power.normalized == pytest.approx(1.0)
        assert result.power.savings_factor == pytest.approx(1.0)

    def test_offered_rate_tracks_config(self, mesh3_config):
        result = Simulator(mesh3_config).run()
        assert result.offered_rate == pytest.approx(
            mesh3_config.workload.injection_rate, rel=0.5
        )

    def test_finish_without_measurement_raises(self, mesh3_config):
        simulator = Simulator(mesh3_config)
        simulator.run_cycles(10)
        with pytest.raises(SimulationError):
            simulator.finish()

    def test_warmup_packets_excluded_from_latency(self):
        config = small_config(rate=0.2, warmup=1_000, measure=1_000)
        simulator = Simulator(config)
        result = simulator.run()
        # Latency samples only from packets created in the measured phase.
        assert result.latency.count <= result.ejected_packets


class TestSeries:
    def test_series_collected(self):
        config = small_config(rate=0.2, warmup=200, measure=2_000)
        simulator = Simulator(config, series_window=500)
        result = simulator.run()
        assert set(result.series) == {
            "offered_rate",
            "accepted_rate",
            "power_w",
            "mean_level",
        }
        assert len(result.series["power_w"]) >= 3

    def test_negative_series_window_rejected(self, mesh3_config):
        with pytest.raises(ConfigError):
            Simulator(mesh3_config, series_window=-1)

    def test_window_not_dividing_measure_cycles(self):
        # 2000 measured cycles / 300-cycle windows: the trailing partial
        # window is simply not emitted; full windows land on multiples of
        # the window size counted from cycle 0, not from measurement start.
        config = small_config(rate=0.2, warmup=250, measure=2_000)
        simulator = Simulator(config, series_window=300)
        result = simulator.run()
        # Boundaries at 300..2100 fall inside (250, 2250]; 2400 does not.
        assert len(result.series["offered_rate"]) == 7
        assert len(result.series["power_w"]) == 7

    def test_zero_series_window_with_probes_attached(self):
        # series_window=0 means "no series"; probes must still work and
        # their windows must keep closing.
        config = small_config(rate=0.2, warmup=200, measure=1_000)
        simulator = Simulator(config, series_window=0)
        probe = simulator.attach_probe(4, 0, window_cycles=50)
        result = simulator.run()
        assert result.series == {}
        assert len(probe.lu_samples) > 0

    def test_begin_measurement_twice_restarts_the_phase(self):
        config = small_config(rate=0.2, warmup=0, measure=300)
        simulator = Simulator(config, series_window=100)
        simulator.run_cycles(400)
        simulator.begin_measurement()
        simulator.run_cycles(300)
        first_offered = simulator.offered_measured
        assert first_offered > 0
        simulator.begin_measurement()  # restart: counters reset, clock rebased
        assert simulator.offered_measured == 0
        assert simulator.ejected_measured == 0
        assert simulator._measure_start == 700
        simulator.run_cycles(300)
        result = simulator.finish()
        assert result.measure_cycles == 300
        assert result.offered_packets == simulator.offered_measured


class TestDVSIntegration:
    def test_idle_network_scales_down_and_saves_power(self):
        config = small_config(
            policy="history", rate=0.02, warmup=2_000, measure=4_000
        )
        result = Simulator(config).run()
        assert result.mean_level < 5.0
        assert result.power.normalized < 0.5
        assert result.power.savings_factor > 2.0

    def test_nodvs_network_stays_at_max(self):
        config = small_config(policy="none", rate=0.02)
        result = Simulator(config).run()
        assert result.mean_level == 9.0
        assert result.power.transition_count == 0

    def test_static_policy_reaches_level(self):
        config = small_config(rate=0.05, warmup=3_000, measure=2_000)
        config = config.with_dvs(DVSControlConfig(policy="static", static_level=4))
        result = Simulator(config).run()
        assert result.mean_level == pytest.approx(4.0, abs=0.5)

    def test_initial_level_respected(self):
        config = small_config(rate=0.02, warmup=0, measure=100)
        config = config.with_dvs(
            DVSControlConfig(policy="history", initial_level=2)
        )
        simulator = Simulator(config)
        assert all(ch.dvs.level == 2 for ch in simulator.channels)

    def test_transition_energy_appears_in_report(self):
        config = small_config(policy="history", rate=0.02, warmup=0, measure=4_000)
        result = Simulator(config).run()
        assert result.power.transition_count > 0
        assert result.power.transition_energy_j > 0.0


class TestProbes:
    def test_probe_collects_samples(self):
        config = small_config(rate=0.4, warmup=0, measure=2_000)
        simulator = Simulator(config)
        probe = simulator.attach_probe(4, 0, window_cycles=50)
        simulator.begin_measurement()
        simulator.run_cycles(2_000)
        # Windows close at cycles 50..1950 inside the run: 39 samples.
        assert len(probe.lu_samples) == 39
        assert len(probe.bu_samples) == len(probe.lu_samples)
        assert all(0.0 <= s <= 1.0 for s in probe.lu_samples)

    def test_probe_on_missing_channel_rejected(self):
        simulator = Simulator(small_config())
        corner = 0  # node (0,0) has no minus-x channel
        with pytest.raises(ConfigError):
            simulator.attach_probe(corner, 1)

    def test_probe_ages_via_hook(self):
        config = small_config(rate=0.5, warmup=0, measure=2_000)
        simulator = Simulator(config)
        probe = simulator.attach_probe(4, 0, window_cycles=50)
        simulator.run_cycles(2_000)
        assert probe.ages
        assert all(age >= 0 for age in probe.ages)
