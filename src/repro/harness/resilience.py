"""Retry policies and structured failure records for sweep execution.

One OOM-killed worker, one raising config, or one Ctrl-C used to lose an
entire figure campaign. This module is the failure model the execution
backends (:mod:`repro.harness.backends`) build on instead:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *seeded deterministic* jitter, plus an optional per-point wall-clock
  timeout. ``KeyboardInterrupt``/``SystemExit`` are always re-raised, so
  a retry wrapper can never eat an interrupt (lint rule R7 enforces the
  same contract statically for all harness code).
* :class:`PointFailure` — the structured record of one failed (or
  recovered) point: config fingerprint, attempt count, exception repr,
  and the worker outcome. Sweeps degrade gracefully to partial results
  plus an explicit :class:`FailureReport` instead of an opaque traceback.
* :func:`run_point` / :func:`run_chunk` — the resilient single-point and
  per-chunk primitives both backends execute; chaos faults
  (:mod:`repro.harness.chaos`) are injected here, never inside the pure
  simulation path, so golden bit-identity is untouched.

Determinism: retries only re-run a *failed* point, backoff jitter is a
pure function of ``(seed, fingerprint, attempt)``, and a recovered point
returns the exact result an undisturbed run would have produced — so
sweeps that survive faults stay bit-identical to fault-free runs.
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterator, Optional, Sequence

from ..config import SimulationConfig
from ..errors import ExperimentError, SweepExecutionError
from ..network.simulator import SimulationResult
from .chaos import inject_point_fault
from .runner import run_simulation


class PointTimeout(Exception):
    """Internal: a point exceeded its per-point wall-clock budget."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded, deterministic retry behavior for one sweep point.

    ``max_attempts`` counts the first try: ``1`` disables retries. The
    delay before retry *n* (1-based) is
    ``backoff_base_s * backoff_factor ** (n - 1)``, shrunk by up to
    ``jitter`` (a fraction in ``[0, 1]``) using a generator seeded from
    ``(jitter_seed, fingerprint, n)`` — the same point always backs off
    identically, but different points decorrelate. ``timeout_s`` bounds
    one attempt's wall clock (enforced with ``SIGALRM``, so it is a no-op
    off the main thread or on platforms without it).
    """

    max_attempts: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    jitter_seed: int = 0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError("max_attempts must be at least 1")
        if self.backoff_base_s < 0:
            raise ExperimentError("backoff_base_s cannot be negative")
        if self.backoff_factor < 1.0:
            raise ExperimentError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ExperimentError("jitter must be within [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ExperimentError("timeout_s must be positive when set")

    def delay_s(self, fingerprint: str, retry: int) -> float:
        """Seconds to wait before retry number *retry* (1-based)."""
        if retry < 1:
            raise ExperimentError("retry number is 1-based")
        base = self.backoff_base_s * self.backoff_factor ** (retry - 1)
        if not self.jitter or not base:
            return base
        rng = Random(f"{self.jitter_seed}:{fingerprint}:{retry}")
        return base * (1.0 - self.jitter * rng.random())


#: The policy backends use when none is given: one retry, tiny backoff,
#: no per-point timeout. Deterministic failures fail fast; transient ones
#: (a chaos fault, a flaky worker) get exactly one second chance.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True, slots=True)
class PointFailure:
    """What happened to one sweep point that did not run cleanly.

    ``recovered`` distinguishes an *incident* (a retry or pool respawn
    eventually produced the result) from a fatal failure (the point has
    no result). ``points`` is 1 except for worker-crash records, which
    describe a whole lost chunk.
    """

    fingerprint: str
    outcome: str  # "raised" | "timeout" | "worker-crash" | "executor"
    attempts: int
    error: str
    recovered: bool = False
    points: int = 1

    def describe(self) -> str:
        state = "recovered" if self.recovered else "failed"
        span = f"{self.points} points" if self.points > 1 else "point"
        # Fingerprints are canonical JSON; hash for a usable short id
        # (prefixes of the JSON are shared across most points).
        short = hashlib.sha256(self.fingerprint.encode("utf-8")).hexdigest()[:12]
        return (
            f"{span} {short}: {state} ({self.outcome}) "
            f"after {self.attempts} attempt(s): {self.error}"
        )


@dataclass
class FailureReport:
    """Aggregated failures and recovered incidents for one sweep."""

    failures: list[PointFailure] = field(default_factory=list)
    incidents: list[PointFailure] = field(default_factory=list)

    def record(self, failure: PointFailure) -> None:
        (self.incidents if failure.recovered else self.failures).append(failure)

    def merge(self, other: "FailureReport") -> None:
        self.failures.extend(other.failures)
        self.incidents.extend(other.incidents)

    @property
    def ok(self) -> bool:
        """True when every point produced a result (incidents are fine)."""
        return not self.failures

    def raise_if_failures(self, total: Optional[int] = None) -> None:
        """Raise :class:`SweepExecutionError` when any point has no result."""
        if not self.failures:
            return
        lost = sum(f.points for f in self.failures)
        of_total = f" of {total}" if total is not None else ""
        lines = "\n".join(f"  - {f.describe()}" for f in self.failures)
        raise SweepExecutionError(
            f"{lost}{of_total} sweep point(s) failed after retries:\n{lines}",
            failures=self.failures,
        )

    def describe(self) -> str:
        """Multi-line human summary (empty string when nothing happened)."""
        lines: list[str] = []
        if self.failures:
            lines.append(f"{len(self.failures)} point(s) failed:")
            lines.extend(f"  - {f.describe()}" for f in self.failures)
        if self.incidents:
            lines.append(f"{len(self.incidents)} incident(s) recovered:")
            lines.extend(f"  - {f.describe()}" for f in self.incidents)
        return "\n".join(lines)


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`PointTimeout` if the block exceeds *seconds*.

    Uses ``SIGALRM``/``setitimer``, which only works on the main thread
    of a process (true for serial runs and for pool worker processes);
    anywhere else the deadline is silently not enforced.
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _trip(signum: int, frame: object) -> None:
        raise PointTimeout(f"point exceeded {seconds:g}s wall clock")

    previous = signal.signal(signal.SIGALRM, _trip)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_point(
    config: SimulationConfig,
    policy: Optional[RetryPolicy] = None,
    *,
    runner: Optional[Callable[[SimulationConfig], SimulationResult]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[Optional[SimulationResult], Optional[PointFailure]]:
    """Run one point under *policy*; never raises for per-point faults.

    Returns ``(result, None)`` on a clean first attempt,
    ``(result, incident)`` when a retry recovered the point, and
    ``(None, failure)`` when every attempt failed.
    ``KeyboardInterrupt``/``SystemExit`` always propagate immediately.
    """
    if policy is None:
        policy = DEFAULT_RETRY_POLICY
    if runner is None:
        runner = run_simulation
    fingerprint = config.fingerprint()
    outcome = "raised"
    error = ""
    for attempt in range(1, policy.max_attempts + 1):
        if attempt > 1:
            sleep(policy.delay_s(fingerprint, attempt - 1))
        try:
            with _deadline(policy.timeout_s):
                inject_point_fault(fingerprint)
                result = runner(config)
        except (KeyboardInterrupt, SystemExit):
            raise
        except PointTimeout as exc:
            outcome, error = "timeout", str(exc)
        except Exception as exc:
            outcome, error = "raised", repr(exc)
        else:
            incident = None
            if attempt > 1:
                incident = PointFailure(
                    fingerprint=fingerprint,
                    outcome=outcome,
                    attempts=attempt,
                    error=error,
                    recovered=True,
                )
            return result, incident
    return None, PointFailure(
        fingerprint=fingerprint,
        outcome=outcome,
        attempts=policy.max_attempts,
        error=error,
    )


def run_chunk(
    configs: Sequence[SimulationConfig], policy: RetryPolicy
) -> list[tuple[Optional[SimulationResult], Optional[PointFailure]]]:
    """The process-pool work unit: :func:`run_point` over one chunk.

    Top-level (picklable) on purpose — :class:`ProcessPoolBackend`
    submits this per chunk so a raising point inside a worker comes back
    as a :class:`PointFailure` instead of poisoning the whole batch.
    """
    return [run_point(config, policy) for config in configs]
