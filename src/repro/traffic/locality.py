"""Sphere-of-locality destination selection.

The paper's first-level task model places communication "based on the
model of sphere of locality [Reed & Grunwald]": a node communicates
preferentially with nodes in its neighborhood. With probability
``locality_probability`` the destination is drawn uniformly from the nodes
within ``locality_radius`` hops of the source; otherwise uniformly from
the remaining nodes. Neighborhoods are computed once per source node and
cached.
"""

from __future__ import annotations

import random

from ..errors import WorkloadError
from ..network.topology import Topology


class SphereOfLocality:
    """Destination chooser with a local/remote split."""

    def __init__(
        self, topology: Topology, radius: int, local_probability: float
    ):
        if radius < 1:
            raise WorkloadError("locality radius must be >= 1")
        if not 0.0 <= local_probability <= 1.0:
            raise WorkloadError("locality probability must be in [0, 1]")
        self.topology = topology
        self.radius = radius
        self.local_probability = local_probability
        self._near: dict[int, list[int]] = {}
        self._far: dict[int, list[int]] = {}

    def _split(self, src: int) -> tuple[list[int], list[int]]:
        near = self._near.get(src)
        if near is None:
            near = self.topology.nodes_within(src, self.radius)
            far = [
                node
                for node in range(self.topology.node_count)
                if node != src and node not in set(near)
            ]
            self._near[src] = near
            self._far[src] = far
        return near, self._far[src]

    def choose(self, src: int, rng: random.Random) -> int:
        """Pick a destination for a task session rooted at *src*."""
        near, far = self._split(src)
        if near and (not far or rng.random() < self.local_probability):
            return rng.choice(near)
        if not far:
            raise WorkloadError(f"node {src} has no possible destination")
        return rng.choice(far)
