"""Pareto distribution sampling (paper Eq. (7)).

The Pareto distribution with shape ``beta`` and location ``a`` has CDF
``F(x) = 1 - (a/x)^beta`` for ``x >= a``. Inverse-transform sampling gives
``X = a / U^(1/beta)`` for uniform ``U`` in (0, 1]. For ``1 < beta < 2``
the mean ``a*beta/(beta-1)`` is finite but the variance is infinite — the
heavy tail that makes multiplexed ON/OFF sources self-similar [Leland et
al.; Willinger et al.].
"""

from __future__ import annotations

import random

from ..errors import WorkloadError


def pareto_sample(rng: random.Random, shape: float, location: float) -> float:
    """Draw one Pareto(shape, location) variate, >= location."""
    if shape <= 0.0 or location <= 0.0:
        raise WorkloadError("Pareto shape and location must be positive")
    # random() is in [0, 1); flip to (0, 1] so the tail stays finite.
    u = 1.0 - rng.random()
    return location / u ** (1.0 / shape)


def pareto_mean(shape: float, location: float) -> float:
    """Mean of Pareto(shape, location); requires shape > 1."""
    if shape <= 1.0:
        raise WorkloadError(f"Pareto mean is infinite for shape {shape} <= 1")
    if location <= 0.0:
        raise WorkloadError("Pareto location must be positive")
    return location * shape / (shape - 1.0)


def pareto_location_for_mean(shape: float, mean: float) -> float:
    """Location parameter making Pareto(shape, .) have the given *mean*."""
    if shape <= 1.0:
        raise WorkloadError(f"no finite mean for shape {shape} <= 1")
    if mean <= 0.0:
        raise WorkloadError("mean must be positive")
    return mean * (shape - 1.0) / shape


def pareto_truncated_mean(shape: float, location: float, cap: float) -> float:
    """``E[min(X, cap)]`` for X ~ Pareto(shape, location).

    For heavy-tailed shapes (1 < shape < 2) the untruncated mean is
    dominated by rare huge samples; any finite observation window (a task
    session's lifetime) effectively truncates the distribution, and
    calibrating against the untruncated mean then substantially
    over-delivers. Closed form:
    ``E[min(X, T)] = (shape*a - a^shape * T^(1-shape)) / (shape - 1)``.
    """
    if shape <= 1.0:
        raise WorkloadError(f"truncated mean needs shape > 1, got {shape}")
    if location <= 0.0 or cap <= 0.0:
        raise WorkloadError("location and cap must be positive")
    if cap <= location:
        return cap
    return (shape * location - location**shape * cap ** (1.0 - shape)) / (shape - 1.0)


def pareto_location_for_truncated_mean(shape: float, mean: float, cap: float) -> float:
    """Location making ``E[min(X, cap)]`` equal *mean* (bisection).

    Requires ``0 < mean < cap``; the truncated mean is strictly increasing
    in the location parameter, from 0 toward ``cap``.
    """
    if not 0.0 < mean < cap:
        raise WorkloadError(f"truncated mean {mean} must lie in (0, cap={cap})")
    low = 1e-12
    high = mean  # E[min(X, cap)] >= location, so location <= mean suffices.
    for _ in range(200):
        mid = 0.5 * (low + high)
        if pareto_truncated_mean(shape, mid, cap) < mean:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
