"""The remote sweep worker behind ``repro worker``.

A worker is a tiny asyncio client around the unchanged PR-5 resilience
path: it registers with a coordinator, receives chunks, runs every point
through :func:`~repro.harness.resilience.run_point` (per-point
``RetryPolicy``, timeouts, chaos injection — all exactly as a process
pool worker would), and sends the per-point outcomes back. Heartbeats
flow on a side task so the coordinator can tell a slow worker from a
dead one.

Results are deterministic functions of their configs, so *which* worker
computes a chunk never matters — the coordinator may freely steal and
re-dispatch, and duplicated computation (a stolen chunk whose original
host later delivers) is just wasted wall clock, never wrong data.

Shared result store: :func:`run_worker_chunk` consults the active sweep
cache (including its ``REPRO_RESULT_STORE`` read-through layer) before
simulating each point and stores fresh results back, so a point any
host has ever computed is answered from the store, and a worker's work
survives even if its result frame is lost on the way home.

Chaos: network fault flavors (``disconnect``, ``stall-heartbeat``,
``slow-host``, ``corrupt-payload``) are claimed per chunk via
:func:`~repro.harness.chaos.claim_network_fault` and applied *here*, at
the fabric layer — the simulation path stays untouched, so chaos-faulted
sweeps remain bit-identical to clean ones once the coordinator recovers
the lost chunks.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from typing import Optional, cast

from ...config import SimulationConfig
from ...errors import DistributedError
from ...network.simulator import SimulationResult
from ..cache import get_cache
from ..chaos import active_plan, claim_network_fault
from ..resilience import PointFailure, RetryPolicy, run_point
from .protocol import read_message, write_message

#: How many lost-connection rejoin attempts a worker makes before giving
#: up (the coordinator is presumed gone for good).
DEFAULT_MAX_REJOINS = 20


def run_worker_chunk(
    configs: list[SimulationConfig], policy: RetryPolicy
) -> list[tuple[Optional[SimulationResult], Optional[PointFailure]]]:
    """The distributed work unit: resilient points, store-aware.

    Same per-point shape as :func:`~repro.harness.resilience.run_chunk`,
    plus shared-result-store semantics: each point consults the active
    sweep cache first (a hit skips the simulation entirely — another
    host may have computed it) and stores fresh results immediately, so
    completed work is durable even if this worker dies before its result
    frame reaches the coordinator.

    Top-level and picklable on purpose; also a lint R11 worker entry
    point — nothing reachable from here may mutate process-global state.
    """
    cache = get_cache()
    outcomes: list[tuple[Optional[SimulationResult], Optional[PointFailure]]] = []
    for config in configs:
        if cache is not None:
            cached = cache.load(config)
            if cached is not None:
                cache.hits += 1
                outcomes.append((cast(SimulationResult, cached), None))
                continue
            cache.misses += 1
        result, failure = run_point(config, policy)
        if result is not None and cache is not None:
            cache.store(config, result)
        outcomes.append((result, failure))
    return outcomes


async def _heartbeats(
    writer: asyncio.StreamWriter,
    worker_id: str,
    interval_s: float,
    busy: list[bool],
) -> None:
    """Side task: announce liveness + progress until cancelled."""
    try:
        while True:
            await asyncio.sleep(interval_s)
            await write_message(
                writer,
                {"type": "heartbeat", "worker_id": worker_id, "busy": busy[0]},
            )
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        # The connection died under us; the main read loop is about to
        # notice the same thing and drive the rejoin, so just stop.
        return


async def _session(
    host: str,
    port: int,
    worker_id: str,
    heartbeat_s: float,
    log: "_Logger",
) -> str:
    """One coordinator connection; returns ``"shutdown"`` or ``"lost"``."""
    reader, writer = await asyncio.open_connection(host, port)
    busy = [False]
    heartbeat_task: Optional[asyncio.Task[None]] = None
    try:
        await write_message(
            writer, {"type": "register", "worker_id": worker_id}
        )
        log(f"registered with coordinator at {host}:{port}")
        heartbeat_task = asyncio.create_task(
            _heartbeats(writer, worker_id, heartbeat_s, busy)
        )
        loop = asyncio.get_running_loop()
        while True:
            message = await read_message(reader)
            kind = message.get("type")
            if kind == "shutdown":
                log("coordinator reports sweep complete; exiting")
                return "shutdown"
            if kind != "chunk":
                raise DistributedError(
                    f"worker received unexpected message type {kind!r}"
                )
            configs: list[SimulationConfig] = message["configs"]
            chunk_id: int = message["chunk_id"]
            retry: RetryPolicy = message["retry"]
            fault = claim_network_fault(configs[0].fingerprint())
            if fault == "disconnect":
                # A mid-run network partition: drop the link on the
                # floor without computing; the coordinator re-dispatches.
                log(f"chaos: disconnecting while holding chunk {chunk_id}")
                cast(asyncio.WriteTransport, writer.transport).abort()
                return "lost"
            if fault == "stall-heartbeat":
                plan = active_plan()
                stall_s = plan.stall_s if plan is not None else 0.0
                log(f"chaos: freezing for {stall_s:g}s (heartbeats stalled)")
                # Deliberately *blocking*: a frozen host stops answering
                # heartbeats too, which is exactly what the coordinator's
                # liveness tracking must catch.
                time.sleep(stall_s)
            busy[0] = True
            try:
                outcomes = await loop.run_in_executor(
                    None, run_worker_chunk, configs, retry
                )
            finally:
                busy[0] = False
            if fault == "slow-host":
                plan = active_plan()
                delay_s = plan.slow_host_s if plan is not None else 0.0
                log(f"chaos: delaying result of chunk {chunk_id} by {delay_s:g}s")
                await asyncio.sleep(delay_s)
            await write_message(
                writer,
                {
                    "type": "result",
                    "chunk_id": chunk_id,
                    "worker_id": worker_id,
                    "outcomes": outcomes,
                },
                corrupt=fault == "corrupt-payload",
            )
            if fault == "corrupt-payload":
                log(f"chaos: sent corrupted result frame for chunk {chunk_id}")
    finally:
        if heartbeat_task is not None:
            heartbeat_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            pass


class _Logger:
    """Prefix-stamped stderr logging, silenced when quiet."""

    def __init__(self, worker_id: str, quiet: bool) -> None:
        self.worker_id = worker_id
        self.quiet = quiet

    def __call__(self, line: str) -> None:
        if not self.quiet:
            print(f"[worker {self.worker_id}] {line}", file=sys.stderr)


async def _worker_main(
    host: str,
    port: int,
    worker_id: str,
    heartbeat_s: float,
    rejoin_delay_s: float,
    max_rejoins: int,
    quiet: bool,
) -> int:
    log = _Logger(worker_id, quiet)
    rejoins = 0
    while True:
        try:
            outcome = await _session(host, port, worker_id, heartbeat_s, log)
        except (KeyboardInterrupt, SystemExit):
            raise
        except (ConnectionError, OSError, EOFError, asyncio.IncompleteReadError,
                DistributedError) as exc:
            log(f"connection lost: {exc!r}")
            outcome = "lost"
        if outcome == "shutdown":
            return 0
        rejoins += 1
        if rejoins > max_rejoins:
            log(f"giving up after {max_rejoins} rejoin attempts")
            return 1
        await asyncio.sleep(rejoin_delay_s)


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: Optional[str] = None,
    heartbeat_s: float = 0.5,
    rejoin_delay_s: float = 0.5,
    max_rejoins: int = DEFAULT_MAX_REJOINS,
    quiet: bool = True,
) -> int:
    """Blocking worker entry point behind ``repro worker``.

    Connects to the coordinator at ``host:port``, serves chunks until
    the coordinator sends ``shutdown`` (exit 0), and survives connection
    loss by rejoining — a worker the coordinator declared dead (stalled
    heartbeats, stolen lease, corrupt frame) re-registers as a fresh
    host and keeps serving. After *max_rejoins* consecutive failed
    attempts the coordinator is presumed gone and the worker exits 1.
    """
    if port <= 0:
        raise DistributedError(f"worker needs a positive port, got {port}")
    if worker_id is None:
        worker_id = f"worker-{os.getpid()}"
    return asyncio.run(
        _worker_main(
            host, port, worker_id, heartbeat_s, rejoin_delay_s, max_rejoins,
            quiet,
        )
    )
