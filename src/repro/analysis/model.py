"""Shared project model for the static-analysis framework.

Every pass in :mod:`repro.analysis` — the per-file syntactic rules
R1–R8 that grew up in :mod:`repro.analysis.lint` and the
interprocedural passes R9–R11 (:mod:`~repro.analysis.taint`,
:mod:`~repro.analysis.dimensions`, :mod:`~repro.analysis.isolation`) —
works off the structures built here, so the source tree is parsed and
indexed exactly once per lint run:

* :class:`ModuleInfo` — one parsed file: AST, source lines, the
  suppression table (including multi-line statement spans), the class
  table, the function table (module functions *and* methods), the
  import table mapping local names to absolute dotted targets, and the
  module-level assignment table with a mutability classification.
* :class:`ProjectModel` — the file set: module lookup by dotted name
  and by path, a project-wide class index, and the call-graph builder.
  Call resolution is *alias-aware*: a local bound to a function
  (``runner = run_simulation``) or to an instance of a known class
  (``sim = Simulator(cfg)`` followed by ``sim.run()``), and instance
  attributes assigned a known class (``self._engine = Engine(...)``
  then ``self._engine.step()``), all resolve to their targets. Names
  the model cannot prove anything about resolve to ``None`` and simply
  contribute no edges — every pass built on the graph is therefore
  best-effort-but-sound-in-practice rather than exhaustive, which the
  committed baseline workflow accounts for (see
  docs/static_analysis.md).

Everything here is stdlib-only on purpose: the linter must run in CI
and pre-commit before any dependency is importable.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from collections import deque
from typing import Iterator, Sequence

#: Matches ``# repro-lint: ignore[R2]`` / ``ignore[R1,R4]`` pragmas.
SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9,\s]+)\]")
#: Matches the whole-file opt-out pragma (first ten lines only).
SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

# -- shared rule vocabulary --------------------------------------------------
# The determinism rules (per-file R1/R8 in lint.py, interprocedural R9 in
# taint.py) agree on what counts as a nondeterminism source; the tables
# live here so the definitions cannot drift apart.

#: Wall-clock call chains banned in simulation-semantics code.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)
#: random.* attributes that are fine: seeded generator constructors and
#: state plumbing, not draws from the shared global generator.
RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
#: numpy.random constructors that are fine when given an explicit seed.
NP_RANDOM_SEEDED_OK = frozenset({"default_rng", "RandomState", "Generator", "SeedSequence"})
#: Environment reads (taint kind ``env``): configuration smuggled past the
#: config fingerprint breaks the sweep cache's soundness claim.
ENV_READ_CALLS = frozenset({"os.getenv", "os.environ.get", "os.environ.setdefault"})
#: Filesystem access (taint kind ``filesystem``): bare function names and
#: ``os.``/``os.path.`` chains treated as host-state reads/writes.
FILESYSTEM_CALLS = frozenset(
    {
        "open",
        "os.listdir",
        "os.scandir",
        "os.walk",
        "os.stat",
        "os.remove",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "os.rename",
        "os.replace",
        "glob.glob",
        "glob.iglob",
    }
)
#: Method names (matched on any receiver) that read or write files.
FILESYSTEM_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)


def nondeterminism_kind(name: str, node: ast.Call) -> tuple[str, str] | None:
    """Classify call *name* as a nondeterminism source.

    Returns ``(kind, detail)`` with kind one of ``rng``/``clock``/``env``/
    ``filesystem``, or ``None`` for a clean call. Seeded constructors
    (``random.Random(seed)``, ``np.random.default_rng(seed)``) are clean.
    """
    if name.startswith("random.") and name.split(".", 1)[1] not in RANDOM_OK:
        return "rng", name
    if name in WALL_CLOCK_CALLS:
        return "clock", name
    for prefix in ("numpy.random.", "np.random."):
        if name.startswith(prefix):
            tail = name[len(prefix):]
            seeded = tail in NP_RANDOM_SEEDED_OK and bool(node.args or node.keywords)
            if not seeded:
                return "rng", name
            return None
    if name in ENV_READ_CALLS or name == "os.environ":
        return "env", name
    if name in FILESYSTEM_CALLS:
        return "filesystem", name
    if name.split(".")[-1] in FILESYSTEM_METHODS:
        return "filesystem", name
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    return dotted_name(node)


def module_name_for_path(path: str) -> str:
    """Dotted module name for *path* (best effort, used as an index key).

    ``src/repro/core/registry.py`` -> ``repro.core.registry`` and
    ``tests/test_lint.py`` -> ``tests.test_lint``; unrecognizable paths
    fall back to the path itself with separators dotted, which keeps
    keys unique without claiming package membership.
    """
    posix = path.replace("\\", "/")
    for anchor in ("/src/", "src/"):
        if posix.startswith(anchor) or anchor in posix:
            _, _, tail = posix.rpartition(anchor)
            posix = tail
            break
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    if posix.endswith("/__init__"):
        posix = posix[: -len("/__init__")]
    return posix.strip("/").replace("/", ".")


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One finding, sortable into stable report order."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        from .lint import RULES  # cycle-free at call time

        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": RULES.get(self.rule, self.rule),
            "message": self.message,
        }


@dataclasses.dataclass
class ClassInfo:
    """What the rules need to know about one class definition."""

    name: str
    bases: tuple[str, ...]
    methods: frozenset[str]
    assigns: dict[str, ast.expr]
    is_dataclass: bool
    node: ast.ClassDef
    #: ``self.<attr> = ClassName(...)`` seen in any method: attr -> class
    #: name. Feeds alias-aware resolution of ``self.<attr>.method()``.
    attr_classes: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression inside a function body."""

    name: str
    node: ast.Call
    line: int
    col: int


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition plus its local def-use facts."""

    qualname: str
    local_name: str
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None
    is_generator: bool
    calls: tuple[CallSite, ...]
    #: Local name -> last syntactic assignment value (alias-aware
    #: def-use; conditional paths collapse to "last assignment wins",
    #: which is the right bias for alias resolution: a wrong alias only
    #: ever produces an extra or missing edge, never a crash).
    assigns: dict[str, ast.expr]

    @property
    def name(self) -> str:
        return self.node.name


def _is_generator(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
            # yields inside a nested def belong to that def
            owner = _owning_function(node, sub)
            if owner is node:
                return True
    return False


def _owning_function(
    root: ast.FunctionDef | ast.AsyncFunctionDef, target: ast.AST
) -> ast.AST | None:
    """The innermost function around *target* inside *root* (linear scan)."""
    stack: list[tuple[ast.AST, ast.AST]] = [(root, root)]
    while stack:
        node, owner = stack.pop()
        if node is target:
            return owner
        for child in ast.iter_child_nodes(node):
            child_owner = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not root
                else owner
            )
            stack.append((child, child_owner))
    return None


class ModuleInfo:
    """One parsed source file plus its symbol and suppression tables."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.display_path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.module_name = module_name_for_path(path)
        self.package = (
            self.module_name.rpartition(".")[0] if "." in self.module_name else ""
        )

        self.suppressions: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if match:
                rules = frozenset(
                    part.strip().upper() for part in match.group(1).split(",")
                )
                self.suppressions[lineno] = rules
        self.skip_file = any(SKIP_FILE_RE.search(line) for line in self.lines[:10])

        self.classes = self._collect_classes()
        self.imports = self._collect_imports()
        self.module_assigns = self._collect_module_assigns()
        self.mutable_globals = self._classify_mutable_globals()
        self.functions = self._collect_functions()
        #: Suppression pragmas widened to full statement spans, so a
        #: pragma anywhere inside a multi-line statement suppresses
        #: findings reported on any line of that statement.
        self.suppression_spans = self._widen_suppressions()

    # -- symbol collection -----------------------------------------------

    def _collect_classes(self) -> dict[str, ClassInfo]:
        classes: dict[str, ClassInfo] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                name for name in (dotted_name(base) for base in node.bases) if name
            )
            methods = frozenset(
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            assigns: dict[str, ast.expr] = {}
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            assigns[target.id] = item.value
                elif isinstance(item, ast.AnnAssign) and item.value is not None:
                    if isinstance(item.target, ast.Name):
                        assigns[item.target.id] = item.value
            is_dataclass = any(
                (decorator_name(dec) or "").split(".")[-1] == "dataclass"
                for dec in node.decorator_list
            )
            info = ClassInfo(node.name, bases, methods, assigns, is_dataclass, node)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._collect_attr_classes(item, info)
            classes[node.name] = info
        return classes

    @staticmethod
    def _collect_attr_classes(
        method: ast.FunctionDef | ast.AsyncFunctionDef, info: ClassInfo
    ) -> None:
        for node in ast.walk(method):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            callee = dotted_name(node.value.func)
            if callee is None:
                continue
            last = callee.split(".")[-1]
            if not (last[:1].isupper()):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attr_classes.setdefault(target.attr, last)

    def _collect_imports(self) -> dict[str, str]:
        """Local name -> absolute dotted target (module or module.attr)."""
        imports: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = f"{base}.{alias.name}" if base else alias.name
        return imports

    def _resolve_from(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb from this module's package.
        parts = self.module_name.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def _collect_module_assigns(self) -> dict[str, ast.expr]:
        assigns: dict[str, ast.expr] = {}
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            assigns[node.id] = stmt.value
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    value = getattr(stmt, "value", None)
                    assigns[stmt.target.id] = (
                        value if value is not None else ast.Constant(value=None)
                    )
        return assigns

    def _classify_mutable_globals(self) -> frozenset[str]:
        """Module-level names bound to provably mutable containers."""
        mutable: set[str] = set()
        for name, value in self.module_assigns.items():
            if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                  ast.DictComp, ast.SetComp)):
                mutable.add(name)
            elif isinstance(value, ast.Call):
                callee = dotted_name(value.func) or ""
                if callee.split(".")[-1] in (
                    "list", "dict", "set", "bytearray", "deque", "defaultdict",
                    "Counter", "OrderedDict",
                ):
                    mutable.add(name)
        return frozenset(mutable)

    def _collect_functions(self) -> dict[str, FunctionInfo]:
        functions: dict[str, FunctionInfo] = {}

        def visit(
            body: Sequence[ast.stmt], class_name: str | None, prefix: str
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local = f"{prefix}{stmt.name}"
                    functions[local] = self._build_function(stmt, class_name, local)
                elif isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, stmt.name, f"{stmt.name}.")
                elif isinstance(stmt, (ast.If, ast.Try)):
                    # Guarded module-level defs (TYPE_CHECKING, fallbacks).
                    for sub_body in (
                        [stmt.body]
                        + ([stmt.orelse] if stmt.orelse else [])
                        + ([h.body for h in stmt.handlers] if isinstance(stmt, ast.Try) else [])
                    ):
                        visit(sub_body, class_name, prefix)

        visit(self.tree.body, None, "")
        return functions

    def _build_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        local: str,
    ) -> FunctionInfo:
        calls: list[CallSite] = []
        assigns: dict[str, ast.expr] = {}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name is None and isinstance(sub.func, ast.Attribute):
                    # Chained receiver, e.g. ``Engine(cfgs).run()`` — keep
                    # the method name with a marker head so the resolver
                    # can look at the receiver expression.
                    name = f"<expr>.{sub.func.attr}"
                if name is not None:
                    calls.append(
                        CallSite(name, sub, sub.lineno, sub.col_offset)
                    )
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        assigns[target.id] = sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if isinstance(sub.target, ast.Name):
                    assigns[sub.target.id] = sub.value
        return FunctionInfo(
            qualname=f"{self.module_name}.{local}",
            local_name=local,
            module=self,
            node=node,
            class_name=class_name,
            is_generator=_is_generator(node),
            calls=tuple(calls),
            assigns=assigns,
        )

    # -- suppressions ------------------------------------------------------

    def _statement_spans(self) -> list[tuple[int, int]]:
        """(start, end) line spans of "simple" statements.

        Compound statements contribute only their header span (``def``/
        ``if``/``for`` line down to the line before their first body
        statement) so a pragma inside a function body never silences the
        whole function.
        """
        spans: list[tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            body = getattr(node, "body", None)
            if body and isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                end = min(end, body[0].lineno - 1)
            if end >= node.lineno:
                spans.append((node.lineno, end))
        return spans

    def _widen_suppressions(self) -> list[tuple[int, int, frozenset[str]]]:
        spans = self._statement_spans()
        widened: list[tuple[int, int, frozenset[str]]] = []
        for lineno, rules in self.suppressions.items():
            best: tuple[int, int] | None = None
            for start, end in spans:
                if start <= lineno <= end and end > start:
                    if best is None or (end - start) < (best[1] - best[0]):
                        best = (start, end)
            if best is not None:
                widened.append((best[0], best[1], rules))
        return widened

    def suppressed(self, lineno: int, rule: str) -> bool:
        rules = self.suppressions.get(lineno)
        if rules is not None and (rule in rules or "ALL" in rules):
            return True
        for start, end, span_rules in self.suppression_spans:
            if start <= lineno <= end and (rule in span_rules or "ALL" in span_rules):
                return True
        return False

    # -- class-hierarchy helpers (per-file; cross-file bases match by name)

    def inherits_from(self, info: ClassInfo, root: str) -> bool:
        seen: set[str] = set()
        stack = list(info.bases)
        while stack:
            base = stack.pop()
            last = base.split(".")[-1]
            if last == root:
                return True
            if last in seen:
                continue
            seen.add(last)
            parent = self.classes.get(last)
            if parent is not None:
                stack.extend(parent.bases)
        return False

    def hierarchy_defines(self, info: ClassInfo, member: str) -> bool:
        """Whether *info* or any in-file ancestor defines *member*."""
        seen: set[str] = set()
        stack: list[ClassInfo] = [info]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            if member in current.methods or member in current.assigns:
                return True
            for base in current.bases:
                parent = self.classes.get(base.split(".")[-1])
                if parent is not None:
                    stack.append(parent)
        return False

    def hierarchy_assigns_true(self, info: ClassInfo, attr: str) -> bool:
        seen: set[str] = set()
        stack: list[ClassInfo] = [info]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            value = current.assigns.get(attr)
            if isinstance(value, ast.Constant) and value.value is True:
                return True
            for base in current.bases:
                parent = self.classes.get(base.split(".")[-1])
                if parent is not None:
                    stack.append(parent)
        return False


class ProjectModel:
    """The parsed file set plus cross-file indexes and the call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        #: class name -> [(module, info)] across the whole file set.
        self.class_index: dict[str, list[tuple[ModuleInfo, ClassInfo]]] = {}
        #: fully qualified function name -> FunctionInfo.
        self.functions: dict[str, FunctionInfo] = {}
        self._edges: dict[str, tuple[str, ...]] | None = None

    def add_module(self, module: ModuleInfo) -> None:
        self.modules[module.module_name] = module
        self.by_path[module.path] = module
        for name, info in module.classes.items():
            self.class_index.setdefault(name, []).append((module, info))
        for function in module.functions.values():
            self.functions[function.qualname] = function
        self._edges = None

    def iter_modules(self) -> Iterator[ModuleInfo]:
        yield from self.modules.values()

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """All functions whose unqualified name is *name*."""
        return [f for f in self.functions.values() if f.name == name]

    # -- resolution --------------------------------------------------------

    def _class_method(
        self, class_name: str, method: str, hint: ModuleInfo | None = None
    ) -> FunctionInfo | None:
        """Resolve ``ClassName.method`` through the project class index,
        walking base classes by name. Prefers classes in *hint*'s module."""
        candidates = self.class_index.get(class_name, [])
        if hint is not None:
            candidates = sorted(
                candidates, key=lambda pair: pair[0] is not hint
            )
        seen: set[str] = set()
        queue: deque[tuple[ModuleInfo, ClassInfo]] = deque(candidates)
        while queue:
            module, info = queue.popleft()
            key = f"{module.module_name}.{info.name}"
            if key in seen:
                continue
            seen.add(key)
            found = module.functions.get(f"{info.name}.{method}")
            if found is not None:
                return found
            for base in info.bases:
                base_last = base.split(".")[-1]
                for pair in self.class_index.get(base_last, []):
                    queue.append(pair)
        return None

    def _resolve_absolute(self, target: str) -> FunctionInfo | None:
        """Resolve an absolute dotted target to a function, method, or a
        class (mapped to its ``__init__``)."""
        found = self.functions.get(target)
        if found is not None:
            return found
        head, _, tail = target.rpartition(".")
        if not tail:
            return None
        # module.Class -> Class.__init__
        module = self.modules.get(target)
        if module is None and head:
            module = self.modules.get(head)
            if module is not None:
                info = module.classes.get(tail)
                if info is not None:
                    return module.functions.get(f"{tail}.__init__")
                function = module.functions.get(tail)
                if function is not None:
                    return function
        # module.Class.method
        if head:
            mod_name, _, cls_name = head.rpartition(".")
            owner = self.modules.get(mod_name) if mod_name else None
            if owner is not None and cls_name in owner.classes:
                return owner.functions.get(f"{cls_name}.{tail}")
        return None

    def _alias_target(
        self, caller: FunctionInfo, name: str
    ) -> str | None:
        """Class name a local/attribute alias refers to, if provable."""
        value = caller.assigns.get(name)
        if value is None and caller.class_name is not None:
            owner = caller.module.classes.get(caller.class_name)
            if owner is not None and name.startswith("self."):
                return owner.attr_classes.get(name[len("self."):])
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None:
                last = callee.split(".")[-1]
                if last[:1].isupper():
                    return last
        return None

    def resolve_call(
        self, caller: FunctionInfo, call: CallSite
    ) -> FunctionInfo | None:
        name = call.name
        module = caller.module
        parts = name.split(".")
        head = parts[0]

        # <expr>.method — chained receiver; resolve instantiation chains
        # like ``Engine(cfgs).run()``.
        if head == "<expr>":
            func = call.node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call):
                receiver = dotted_name(func.value.func)
                if receiver is not None:
                    cls = self._local_class_name(module, receiver)
                    if cls is not None:
                        return self._class_method(cls, parts[-1], hint=module)
            return None

        # self.method() / cls.method() and self.attr.method()
        if head in ("self", "cls") and caller.class_name is not None:
            if len(parts) == 2:
                return self._class_method(
                    caller.class_name, parts[1], hint=module
                )
            if len(parts) == 3:
                owner = module.classes.get(caller.class_name)
                if owner is not None:
                    attr_cls = owner.attr_classes.get(parts[1])
                    if attr_cls is not None:
                        return self._class_method(attr_cls, parts[2], hint=module)
            return None

        # Plain local name: alias to a function or a class?
        if len(parts) == 1:
            aliased = caller.assigns.get(head)
            if isinstance(aliased, ast.Name):
                return self.resolve_call(
                    caller,
                    CallSite(aliased.id, call.node, call.line, call.col),
                )
            if head in module.functions:
                return module.functions[head]
            cls = self._local_class_name(module, head)
            if cls is not None:
                return self._class_method(cls, "__init__", hint=module)
            target = module.imports.get(head)
            if target is not None:
                return self._resolve_absolute(target)
            return None

        # alias.method() where alias is a local bound to a known class.
        alias_cls = self._alias_target(caller, head)
        if alias_cls is not None and len(parts) == 2:
            return self._class_method(alias_cls, parts[1], hint=module)

        # Imported module/class attribute chains.
        target = module.imports.get(head)
        if target is not None:
            absolute = ".".join([target] + parts[1:])
            return self._resolve_absolute(absolute)

        # ClassName.method inside the defining module.
        if head in module.classes and len(parts) == 2:
            return self._class_method(head, parts[1], hint=module)
        return None

    @staticmethod
    def _local_class_name(module: ModuleInfo, name: str) -> str | None:
        last = name.split(".")[-1]
        if last in module.classes:
            return last
        target = module.imports.get(name)
        if target is not None and target.split(".")[-1][:1].isupper():
            return target.split(".")[-1]
        return None

    # -- call graph --------------------------------------------------------

    def call_graph(self) -> dict[str, tuple[str, ...]]:
        """qualname -> callee qualnames (resolved edges only), cached."""
        if self._edges is None:
            edges: dict[str, tuple[str, ...]] = {}
            for function in self.functions.values():
                seen: list[str] = []
                for call in function.calls:
                    resolved = self.resolve_call(function, call)
                    if resolved is not None and resolved.qualname not in seen:
                        seen.append(resolved.qualname)
                edges[function.qualname] = tuple(seen)
            self._edges = edges
        return self._edges

    def reachable_from(self, roots: Sequence[str]) -> dict[str, tuple[str, ...]]:
        """BFS closure over the call graph.

        Returns ``qualname -> call chain`` (shortest path from a root,
        inclusive) for every function reachable from *roots*.
        """
        graph = self.call_graph()
        chains: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root in self.functions and root not in chains:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee in graph.get(current, ()):
                if callee not in chains:
                    chains[callee] = chains[current] + (callee,)
                    queue.append(callee)
        return chains
