"""Competitor DVS policies from the related work (PAPERS.md).

These policies answer "how good is the paper's history policy, really?"
by bracketing it from both sides on the power-vs-latency plane:

* :class:`ErrorCorrectionPolicy` — Razor-style timing-error-correction
  DVS in the spirit of Kaul et al.: keep undervolting until a (seeded,
  deterministic) error model fires, pay a replay latency/energy penalty,
  and step back up. More aggressive than history prediction, but the
  replay tax grows as the margin shrinks.
* :class:`LinkShutdownPolicy` — leakage-aware link shutdown in the
  spirit of Tsai et al.: behaves like the history policy inside the V/F
  table, but parks persistently idle links in the sleep state *below*
  level 0 (retention rail, leakage only) and pays a wake transition when
  traffic returns.
* :class:`OraclePolicy` — a clairvoyant baseline that sizes the link to
  each window's utilization with perfect prediction and no hysteresis:
  the upper bound a causal predictor can approach on Fig 13-style plots.

All three follow the policy-purity contract enforced by lint rule R8:
``decide()`` touches no unseeded randomness, no wall clock, and no
module globals — the error model draws from a ``random.Random`` seeded
in ``__init__`` from config, so runs are bit-identical across backends.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..errors import ConfigError
from .history import EWMAPredictor
from .levels import PAPER_TABLE, VFTable
from .policy import DVSAction, DVSPolicy, PolicyInputs
from .registry import PolicyBuildContext, PolicyKnob, knob_values, register_policy
from .thresholds import TABLE1_DEFAULT, ThresholdSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import DVSControlConfig


class ErrorCorrectionPolicy(DVSPolicy):
    """Razor-style error-correction DVS (Kaul et al. flavor).

    The policy assumes per-flit timing-error detection with replay: it
    probes downward through the V/F table whenever a probation period of
    ``probe_windows`` consecutive error-free windows passes, and steps
    back up the moment the error model fires, charging ``replay_flits``
    retransmissions through the port controller. After an error it holds
    for ``backoff_windows`` windows before probing down again.

    The error model is deterministic for a fixed seed: each window the
    per-window error probability is

        ``p = min(1, LU * error_rate * error_growth ** (max_level - level))``

    — no errors at the top level (full margin), exponentially more likely
    per level of undervolt, and proportional to how much traffic actually
    crossed the wire. Draws come from a private ``random.Random`` seeded
    from the config seed and the channel index, so streams decorrelate
    across ports while staying reproducible across backends.
    """

    has_replay = True

    def __init__(
        self,
        *,
        error_rate: float = 5.0e-4,
        error_growth: float = 4.0,
        probe_windows: int = 4,
        backoff_windows: int = 8,
        replay_flits: int = 8,
        seed: int = 1,
        channel_index: int = 0,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ConfigError("error rate must be in [0, 1]")
        if error_growth < 1.0:
            raise ConfigError("error growth must be >= 1")
        if probe_windows < 1:
            raise ConfigError("probe windows must be >= 1")
        if backoff_windows < 0:
            raise ConfigError("backoff windows must be non-negative")
        if replay_flits < 1:
            raise ConfigError("replay flits must be >= 1")
        self.error_rate = error_rate
        self.error_growth = error_growth
        self.probe_windows = probe_windows
        self.backoff_windows = backoff_windows
        self.replay_flits = replay_flits
        self._seed = (int(seed) << 20) ^ channel_index
        self._rng = random.Random(self._seed)
        self._clean_windows = 0
        self._backoff_left = 0
        self._pending_replay = 0
        self.errors_observed = 0

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        margin_levels = inputs.max_level - inputs.level
        if margin_levels > 0:
            probability = min(
                1.0,
                inputs.link_utilization
                * self.error_rate
                * self.error_growth**margin_levels,
            )
        else:
            probability = 0.0
        if probability > 0.0 and self._rng.random() < probability:
            # Timing error detected: replay the failed flits and retreat.
            self.errors_observed += 1
            self._pending_replay += self.replay_flits
            self._clean_windows = 0
            self._backoff_left = self.backoff_windows
            return DVSAction.STEP_UP
        if self._backoff_left > 0:
            self._backoff_left -= 1
            return DVSAction.HOLD
        self._clean_windows += 1
        if self._clean_windows >= self.probe_windows and inputs.level > 0:
            self._clean_windows = 0
            return DVSAction.STEP_DOWN
        return DVSAction.HOLD

    def consume_replay_flits(self) -> int:
        flits = self._pending_replay
        self._pending_replay = 0
        return flits

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._clean_windows = 0
        self._backoff_left = 0
        self._pending_replay = 0
        self.errors_observed = 0


class LinkShutdownPolicy(DVSPolicy):
    """Leakage-aware link shutdown (Tsai et al. flavor).

    Inside the V/F table this is the paper's history policy (EWMA
    prediction plus the congestion litmus). On top of it, a persistently
    idle link is parked below level 0: after ``sleep_patience``
    consecutive windows with predicted LU under ``sleep_lu`` while
    already sitting at level 0, the policy issues ``SLEEP``. While
    asleep it issues ``WAKE`` as soon as the routers recorded traffic
    demand for the channel (or unconditionally after
    ``max_sleep_windows`` windows, when that cap is nonzero); EWMA state
    is frozen during sleep so the pre-sleep traffic estimate survives
    the nap. The channel's wake lockout bounds sleep/wake thrash.
    """

    def __init__(
        self,
        thresholds: ThresholdSet = TABLE1_DEFAULT,
        *,
        weight: float = 3.0,
        sleep_lu: float = 0.05,
        sleep_patience: int = 4,
        max_sleep_windows: int = 0,
    ) -> None:
        if not 0.0 <= sleep_lu <= 1.0:
            raise ConfigError("sleep LU threshold must be in [0, 1]")
        if sleep_patience < 1:
            raise ConfigError("sleep patience must be >= 1")
        if max_sleep_windows < 0:
            raise ConfigError("max sleep windows must be non-negative")
        self.thresholds = thresholds
        self.sleep_lu = sleep_lu
        self.sleep_patience = sleep_patience
        self.max_sleep_windows = max_sleep_windows
        self._lu_predictor = EWMAPredictor(weight)
        self._bu_predictor = EWMAPredictor(weight)
        self._idle_windows = 0
        self._slept_windows = 0

    @property
    def predicted_link_utilization(self) -> float:
        return self._lu_predictor.predicted

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        if inputs.asleep:
            self._slept_windows += 1
            cap_hit = (
                self.max_sleep_windows > 0
                and self._slept_windows >= self.max_sleep_windows
            )
            if inputs.sleep_demand or cap_hit:
                self._slept_windows = 0
                self._idle_windows = 0
                return DVSAction.WAKE
            return DVSAction.HOLD

        lu_pred = self._lu_predictor.update(inputs.link_utilization)
        bu_pred = self._bu_predictor.update(inputs.buffer_utilization)

        if inputs.level == 0 and lu_pred < self.sleep_lu:
            self._idle_windows += 1
            if self._idle_windows >= self.sleep_patience:
                self._idle_windows = 0
                self._slept_windows = 0
                return DVSAction.SLEEP
        else:
            self._idle_windows = 0

        t_low, t_high = self.thresholds.select(bu_pred)
        if lu_pred < t_low:
            return DVSAction.STEP_DOWN
        if lu_pred > t_high:
            return DVSAction.STEP_UP
        return DVSAction.HOLD

    def reset(self) -> None:
        self._lu_predictor.reset()
        self._bu_predictor.reset()
        self._idle_windows = 0
        self._slept_windows = 0


class OraclePolicy(DVSPolicy):
    """Clairvoyant utilization-tracking baseline.

    Treats each window's measured link utilization as a *perfect*
    prediction of the next window — no EWMA lag, no threshold
    hysteresis — and walks the level toward the cheapest operating point
    whose bandwidth covers the demand with a ``headroom`` safety factor:
    the minimal level ``L'`` with

        ``frequency(L') * headroom >= LU * frequency(level)``.

    One level per window (the hardware's one-step transition rule), so
    this is the upper bound on what a causal per-window predictor can
    achieve on the power-vs-latency frontier, not a physically free
    lunch.
    """

    def __init__(self, table: VFTable, *, headroom: float = 0.9) -> None:
        if not 0.0 < headroom <= 1.0:
            raise ConfigError("headroom must be in (0, 1]")
        self.table = table
        self.headroom = headroom

    def target_level(self, inputs: PolicyInputs) -> int:
        """Cheapest level covering the window's demand with headroom."""
        demand_hz = inputs.link_utilization * self.table.frequency(inputs.level)
        max_level = min(inputs.max_level, self.table.max_level)
        for level in range(max_level + 1):
            if self.table.frequency(level) * self.headroom >= demand_hz:
                return level
        return max_level

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        target = self.target_level(inputs)
        if inputs.level < target:
            return DVSAction.STEP_UP
        if inputs.level > target:
            return DVSAction.STEP_DOWN
        return DVSAction.HOLD


# ---------------------------------------------------------------------------
# Registry entries
# ---------------------------------------------------------------------------


@register_policy(
    "error_correction",
    description="Razor-style error-correction DVS: undervolt until the "
    "seeded error model fires, pay a replay penalty, step back up",
    knobs=(
        PolicyKnob(
            "error_rate",
            default=5.0e-4,
            minimum=0.0,
            maximum=1.0,
            sweep=(1.0e-4, 1.0e-3),
            description="base per-window error probability at one level of undervolt",
        ),
        PolicyKnob(
            "error_growth",
            default=4.0,
            minimum=1.0,
            description="error probability multiplier per level of undervolt",
        ),
        PolicyKnob(
            "probe_windows",
            default=4,
            minimum=1,
            integer=True,
            sweep=(2, 8),
            description="error-free windows required before probing down",
        ),
        PolicyKnob(
            "backoff_windows",
            default=8,
            minimum=0,
            integer=True,
            description="hold windows after an error before probing again",
        ),
        PolicyKnob(
            "replay_flits",
            default=8,
            minimum=1,
            integer=True,
            description="flits retransmitted per detected error",
        ),
        PolicyKnob(
            "seed",
            default=1,
            integer=True,
            description="error-model seed (mixed with the channel index)",
        ),
    ),
)
def _build_error_correction(
    dvs: "DVSControlConfig", context: PolicyBuildContext
) -> DVSPolicy:
    values = knob_values(dvs)
    return ErrorCorrectionPolicy(
        error_rate=values["error_rate"],
        error_growth=values["error_growth"],
        probe_windows=int(values["probe_windows"]),
        backoff_windows=int(values["backoff_windows"]),
        replay_flits=int(values["replay_flits"]),
        seed=int(values["seed"]),
        channel_index=context.channel_index,
    )


@register_policy(
    "link_shutdown",
    description="leakage-aware link shutdown: history policy plus a sleep "
    "state below level 0 with demand-driven wake",
    knobs=(
        PolicyKnob(
            "ewma_weight",
            default=3.0,
            minimum=1e-9,
            description="history weight W of the EWMA predictor (Eq. (5))",
        ),
        PolicyKnob(
            "sleep_lu",
            default=0.05,
            minimum=0.0,
            maximum=1.0,
            sweep=(0.02, 0.08),
            description="predicted-LU threshold below which a level-0 link naps",
        ),
        PolicyKnob(
            "sleep_patience",
            default=4,
            minimum=1,
            integer=True,
            sweep=(2, 8),
            description="consecutive idle windows required before sleeping",
        ),
        PolicyKnob(
            "max_sleep_windows",
            default=0,
            minimum=0,
            integer=True,
            description="forced-wake cap in windows (0 = wake on demand only)",
        ),
    ),
    uses_thresholds=True,
    controls_sleep=True,
)
def _build_link_shutdown(
    dvs: "DVSControlConfig", context: PolicyBuildContext
) -> DVSPolicy:
    values = knob_values(dvs)
    return LinkShutdownPolicy(
        dvs.thresholds,
        weight=values["ewma_weight"],
        sleep_lu=values["sleep_lu"],
        sleep_patience=int(values["sleep_patience"]),
        max_sleep_windows=int(values["max_sleep_windows"]),
    )


@register_policy(
    "oracle",
    description="clairvoyant per-window utilization tracking: the upper "
    "bound for causal predictors on Fig 13-style plots",
    knobs=(
        PolicyKnob(
            "headroom",
            default=0.9,
            minimum=0.05,
            maximum=1.0,
            sweep=(0.7, 0.9),
            description="fraction of a level's bandwidth the demand may fill",
        ),
    ),
)
def _build_oracle(dvs: "DVSControlConfig", context: PolicyBuildContext) -> DVSPolicy:
    values = knob_values(dvs)
    table = context.table if context.table is not None else PAPER_TABLE
    return OraclePolicy(table, headroom=values["headroom"])
