"""Voltage/frequency operating points of a DVS link.

The paper's multi-level DVS link model (Section 2, Figure 2) supports ten
discrete frequency levels with corresponding minimum supply voltages,
spanning 125 MHz / 0.9 V up to 1 GHz / 2.5 V for the serial links of the
evaluated router (Section 4.2). Only the two endpoints and the level count
are published; we build the table with evenly spaced frequencies and
linearly interpolated voltages between the endpoints, which matches the
staircase sketched in the paper's Figure 2.

Levels here are indexed by **ascending frequency**: level 0 is the slowest
(lowest-voltage) point and level ``n-1`` the fastest. The paper's
Algorithm 1 indexes its table fastest-first; its ``CurLevel + 1`` ("go
slower") is our ``level - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import ConfigError
from ..units import ghz, mhz


@dataclass(frozen=True, slots=True)
class VFOperatingPoint:
    """One (frequency, voltage) operating point of a DVS link.

    Attributes:
        frequency_hz: Link clock frequency in hertz.
        voltage_v: Minimum supply voltage at which the link circuitry meets
            timing (and the published BER target) at this frequency.
    """

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ConfigError(f"frequency must be positive, got {self.frequency_hz!r}")
        if self.voltage_v <= 0.0:
            raise ConfigError(f"voltage must be positive, got {self.voltage_v!r}")


class VFTable:
    """An ordered table of voltage/frequency operating points.

    The table is immutable once constructed and validated to be strictly
    increasing in frequency and non-decreasing in voltage (a faster link can
    never require a *lower* minimum supply voltage).
    """

    def __init__(self, points: Sequence[VFOperatingPoint]) -> None:
        if len(points) < 2:
            raise ConfigError("a VF table needs at least two levels")
        for lower, upper in zip(points, points[1:], strict=False):
            if upper.frequency_hz <= lower.frequency_hz:
                raise ConfigError(
                    "VF table frequencies must be strictly increasing: "
                    f"{lower.frequency_hz} then {upper.frequency_hz}"
                )
            if upper.voltage_v < lower.voltage_v:
                raise ConfigError(
                    "VF table voltages must be non-decreasing: "
                    f"{lower.voltage_v} then {upper.voltage_v}"
                )
        self._points = tuple(points)

    @classmethod
    def from_endpoints(
        cls,
        *,
        levels: int = 10,
        min_frequency_hz: float = mhz(125.0),
        max_frequency_hz: float = ghz(1.0),
        min_voltage_v: float = 0.9,
        max_voltage_v: float = 2.5,
    ) -> "VFTable":
        """Build the paper's table: evenly spaced frequencies, linear voltage.

        Defaults reproduce Section 4.2: ten levels from 125 MHz / 0.9 V to
        1 GHz / 2.5 V.
        """
        if levels < 2:
            raise ConfigError(f"need at least two levels, got {levels}")
        if min_frequency_hz >= max_frequency_hz:
            raise ConfigError("min frequency must be below max frequency")
        if min_voltage_v > max_voltage_v:
            raise ConfigError("min voltage must not exceed max voltage")
        freq_step = (max_frequency_hz - min_frequency_hz) / (levels - 1)
        volt_step = (max_voltage_v - min_voltage_v) / (levels - 1)
        points = [
            VFOperatingPoint(
                frequency_hz=min_frequency_hz + i * freq_step,
                voltage_v=min_voltage_v + i * volt_step,
            )
            for i in range(levels)
        ]
        return cls(points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[VFOperatingPoint]:
        return iter(self._points)

    def __getitem__(self, level: int) -> VFOperatingPoint:
        if not 0 <= level < len(self._points):
            raise ConfigError(
                f"level {level} out of range [0, {len(self._points) - 1}]"
            )
        return self._points[level]

    @property
    def max_level(self) -> int:
        """Index of the fastest operating point."""
        return len(self._points) - 1

    @property
    def points(self) -> tuple[VFOperatingPoint, ...]:
        """All operating points, slowest first."""
        return self._points

    def frequency(self, level: int) -> float:
        """Link frequency (Hz) at *level*."""
        return self[level].frequency_hz

    def voltage(self, level: int) -> float:
        """Minimum supply voltage (V) at *level*."""
        return self[level].voltage_v

    def clamp(self, level: int) -> int:
        """Clamp *level* into the valid index range."""
        return max(0, min(self.max_level, level))

    def level_for_frequency(self, frequency_hz: float) -> int:
        """Lowest level whose frequency is >= *frequency_hz* (clamped)."""
        for index, point in enumerate(self._points):
            if point.frequency_hz >= frequency_hz:
                return index
        return self.max_level

    def serialization_ratio(self, level: int, router_clock_hz: float) -> float:
        """Router cycles one link clock occupies at *level*.

        A flit crosses the channel in exactly one link clock (8 serial links
        with 4:1 mux carry a 32-bit flit per link clock), so this is also
        the per-flit channel occupancy in router cycles: 1.0 at the top
        level for the paper's parameters, 8.0 at the bottom.
        """
        if router_clock_hz <= 0.0:
            raise ConfigError("router clock must be positive")
        return router_clock_hz / self[level].frequency_hz

    def describe(self) -> str:
        """Human-readable multi-line rendering of the table."""
        lines = ["level  freq(MHz)  voltage(V)"]
        for index, point in enumerate(self._points):
            lines.append(
                f"{index:>5}  {point.frequency_hz / 1e6:>9.1f}  {point.voltage_v:>10.3f}"
            )
        return "\n".join(lines)


#: The table used throughout the paper's evaluation (Section 4.2).
PAPER_TABLE = VFTable.from_endpoints()
