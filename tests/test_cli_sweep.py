"""CLI sweep and figure commands at smoke scale (slowish, end-to-end)."""

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_sweep_smoke(self, capsys):
        code = main(["sweep", "--rates", "0.2,0.6", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lat_nodvs" in out
        assert "power savings" in out

    def test_sweep_bad_rates(self, capsys):
        with pytest.raises(ValueError):
            main(["sweep", "--rates", "fast", "--scale", "smoke"])


class TestFigureCommand:
    def test_fig8_smoke(self, capsys):
        assert main(["figure", "fig8", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_ablation_weight_smoke(self, capsys):
        assert main(["figure", "ablation-weight", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "EWMA" in out or "Ablation" in out
