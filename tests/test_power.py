"""Tests for power accounting and the router power profile."""

import pytest

from repro.core.dvs_link import DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER
from repro.errors import ConfigError, SimulationError
from repro.power.accounting import PowerAccountant
from repro.power.router_power import RouterPowerProfile


def make_channels(count=4, initial_level=9):
    return [
        DVSChannel(
            PAPER_TABLE,
            PAPER_LINK_POWER,
            timing=TransitionTiming(0.2e-6, 4),
            initial_level=initial_level,
        )
        for _ in range(count)
    ]


class TestPowerAccountant:
    def test_baseline(self):
        accountant = PowerAccountant(make_channels(4), 1.0e9)
        assert accountant.baseline_power_w == pytest.approx(4 * 1.6)

    def test_steady_max_power_normalized_one(self):
        channels = make_channels(4)
        accountant = PowerAccountant(channels, 1.0e9)
        accountant.begin(0)
        for channel in channels:
            channel.finalize(10_000)
        report = accountant.report(10_000)
        assert report.normalized == pytest.approx(1.0)
        assert report.savings_factor == pytest.approx(1.0)
        assert report.transition_count == 0

    def test_low_level_savings(self):
        channels = make_channels(4, initial_level=0)
        accountant = PowerAccountant(channels, 1.0e9)
        accountant.begin(0)
        report = accountant.report(10_000)
        assert report.savings_factor == pytest.approx(200.0 / 23.6, rel=1e-6)

    def test_transitions_counted_in_phase(self):
        channels = make_channels(2)
        accountant = PowerAccountant(channels, 1.0e9)
        channels[0].request_level(8, 0)  # before measurement
        while channels[0].pending_event_cycle is not None:
            channels[0].on_phase_end(channels[0].pending_event_cycle)
        accountant.begin(1_000)
        channels[1].request_level(8, 1_000)
        while channels[1].pending_event_cycle is not None:
            channels[1].on_phase_end(channels[1].pending_event_cycle)
        report = accountant.report(5_000)
        assert report.transition_count == 1
        assert report.transition_energy_j > 0.0

    def test_report_before_begin(self):
        accountant = PowerAccountant(make_channels(1), 1.0e9)
        with pytest.raises(SimulationError):
            accountant.report(100)

    def test_zero_length_phase(self):
        accountant = PowerAccountant(make_channels(1), 1.0e9)
        accountant.begin(10)
        with pytest.raises(SimulationError):
            accountant.report(10)

    def test_needs_channels(self):
        with pytest.raises(SimulationError):
            PowerAccountant([], 1.0e9)

    def test_mean_level(self):
        channels = make_channels(2, initial_level=9) + make_channels(
            2, initial_level=5
        )
        accountant = PowerAccountant(channels, 1.0e9)
        assert accountant.mean_level() == pytest.approx(7.0)

    def test_instantaneous_power(self):
        accountant = PowerAccountant(make_channels(3), 1.0e9)
        assert accountant.instantaneous_power_w() == pytest.approx(3 * 1.6)


class TestRouterPowerProfile:
    def test_paper_link_fraction(self):
        profile = RouterPowerProfile()
        fractions = profile.breakdown_fractions()
        assert fractions["links"] == pytest.approx(0.824)

    def test_paper_allocator_power(self):
        profile = RouterPowerProfile()
        assert profile.breakdown_w()["allocators"] == pytest.approx(0.081)

    def test_links_power(self):
        # 4 ports x 8 links x 200 mW = 6.4 W.
        assert RouterPowerProfile().links_power_w == pytest.approx(6.4)

    def test_total_implied(self):
        assert RouterPowerProfile().total_power_w == pytest.approx(6.4 / 0.824)

    def test_fractions_sum_to_one(self):
        fractions = RouterPowerProfile().breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_describe(self):
        text = RouterPowerProfile().describe()
        assert "links" in text
        assert "TOTAL" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            RouterPowerProfile(link_fraction=1.5)
        with pytest.raises(ConfigError):
            RouterPowerProfile(ports=0)
        with pytest.raises(ConfigError):
            RouterPowerProfile(core_split={"buffers": 0.5})

    def test_inconsistent_anchors_rejected(self):
        profile = RouterPowerProfile(allocator_power_w=10.0)
        with pytest.raises(ConfigError):
            profile.breakdown_w()
