"""Multi-process sweep execution.

Rate sweeps and policy comparisons are embarrassingly parallel — every
point is an independent simulation — and the pure-Python simulator is
single-core, so a process pool cuts wall-clock nearly linearly. This
module mirrors :mod:`repro.harness.sweep`'s interface with a
``processes`` knob.

Determinism: each point is fully described by its (picklable, frozen)
:class:`~repro.config.SimulationConfig`, so parallel results are
bit-identical to serial ones, point for point.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ..config import DVSControlConfig, SimulationConfig
from ..errors import ExperimentError
from .runner import run_simulation
from .sweep import SweepPoint


def _run_point(item: tuple[str, float, SimulationConfig]):
    """Module-level worker (must be picklable)."""
    name, rate, config = item
    result = run_simulation(config)
    return name, rate, SweepPoint.from_result(rate, result)


def parallel_rate_sweep(
    base_config: SimulationConfig, rates, *, processes: int = 4
) -> list[SweepPoint]:
    """:func:`repro.harness.sweep.rate_sweep`, across processes."""
    sweeps = parallel_compare_policies(
        base_config, rates, {"_": base_config.dvs}, processes=processes
    )
    return sweeps["_"]


def parallel_compare_policies(
    base_config: SimulationConfig,
    rates,
    policies: dict[str, DVSControlConfig],
    *,
    processes: int = 4,
) -> dict[str, list[SweepPoint]]:
    """:func:`repro.harness.sweep.compare_policies`, across processes."""
    if processes < 1:
        raise ExperimentError("need at least one process")
    if not policies:
        raise ExperimentError("need at least one policy")
    rates = list(rates)
    work = [
        (name, rate, base_config.with_dvs(dvs).with_rate(rate))
        for name, dvs in policies.items()
        for rate in rates
    ]
    if processes == 1:
        finished = [_run_point(item) for item in work]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            finished = list(pool.map(_run_point, work))
    sweeps: dict[str, dict[float, SweepPoint]] = {name: {} for name in policies}
    for name, rate, point in finished:
        sweeps[name][rate] = point
    return {
        name: [points[rate] for rate in rates] for name, points in sweeps.items()
    }
