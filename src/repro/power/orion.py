"""Orion-style router-core energy model.

The paper cites Orion [Wang et al., MICRO 2002] for network power
modeling and argues (Section 4.2) that router-core power barely changes
with DVS links: a flit that lingers "can potentially trigger more
arbitrations [but] does not increase buffer read/write power, nor
crossbar power", and the allocators only draw 81 mW. This module makes
that argument quantitative: first-order per-event energies for the three
core datapath structures, in the style of Orion's capacitance models,
calibrated so a fully loaded router lands on the Figure 7 core budget.

Event energies (``E = 1/2 C V^2`` aggregates folded into per-event
constants at 2.5 V, TSMC 0.25 um scale):

* buffer write and read — SRAM word access over ``flit_bits`` bits;
* crossbar traversal — one input-to-output connection of a
  ``ports x ports`` matrix crossbar;
* arbitration — one round of a ``requesters``-input arbiter.

The companion :class:`RouterEnergyCounters` turns a simulator's activity
counters into energy so experiments can compare core energy with and
without DVS (see ``benchmarks/bench_router_core_energy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Gate-capacitance scale (F) per minimum-width transistor, 0.25 um-ish.
_C_GATE = 2.0e-15


@dataclass(frozen=True, slots=True)
class OrionParameters:
    """Technology and structure parameters of the core energy model."""

    voltage_v: float = 2.5
    flit_bits: int = 32
    ports: int = 5
    vcs_per_port: int = 2
    buffer_depth: int = 64
    #: Effective capacitance multipliers per structure (dimensionless
    #: counts of gate capacitances switched per bit/event), first-order
    #: Orion-style constants.
    buffer_cap_per_bit: float = 60.0
    crossbar_cap_per_bit: float = 35.0
    arbiter_cap_per_request: float = 150.0

    def __post_init__(self) -> None:
        if self.voltage_v <= 0.0:
            raise ConfigError("voltage must be positive")
        if min(self.flit_bits, self.ports, self.vcs_per_port, self.buffer_depth) < 1:
            raise ConfigError("structure parameters must be positive")


class RouterEnergyModel:
    """Per-event energies for buffers, crossbar and arbiters."""

    def __init__(self, params: OrionParameters | None = None):
        self.params = params if params is not None else OrionParameters()
        v2 = self.params.voltage_v**2

        # Buffer access: word line + bit lines scale with depth and width.
        depth_factor = 1.0 + self.params.buffer_depth / 64.0
        self.buffer_write_j = (
            0.5 * _C_GATE * self.params.buffer_cap_per_bit
            * self.params.flit_bits * depth_factor * v2
        )
        self.buffer_read_j = 0.8 * self.buffer_write_j  # reads are cheaper

        # Crossbar: one traversal drives an input row and an output column.
        xbar_factor = self.params.ports / 5.0
        self.crossbar_traversal_j = (
            0.5 * _C_GATE * self.params.crossbar_cap_per_bit
            * self.params.flit_bits * (1.0 + xbar_factor) * v2
        )

        # Arbitration: request/grant network over all requesters.
        requesters = self.params.ports * self.params.vcs_per_port
        self.arbitration_j = (
            0.5 * _C_GATE * self.params.arbiter_cap_per_request * requesters * v2
        )

    def flit_traversal_j(self) -> float:
        """Core energy of one flit's hop: write + read + crossbar + arb."""
        return (
            self.buffer_write_j
            + self.buffer_read_j
            + self.crossbar_traversal_j
            + self.arbitration_j
        )

    def peak_core_power_w(self, clock_hz: float) -> float:
        """Core power with every port moving a flit every cycle."""
        if clock_hz <= 0.0:
            raise ConfigError("clock must be positive")
        return self.params.ports * self.flit_traversal_j() * clock_hz

    def describe(self) -> str:
        lines = ["Orion-style per-event core energies"]
        lines.append(f"  buffer write    {self.buffer_write_j * 1e12:8.2f} pJ")
        lines.append(f"  buffer read     {self.buffer_read_j * 1e12:8.2f} pJ")
        lines.append(f"  crossbar pass   {self.crossbar_traversal_j * 1e12:8.2f} pJ")
        lines.append(f"  arbitration     {self.arbitration_j * 1e12:8.2f} pJ")
        lines.append(f"  per-flit hop    {self.flit_traversal_j() * 1e12:8.2f} pJ")
        return "\n".join(lines)


@dataclass(slots=True)
class RouterEnergyCounters:
    """Activity counters convertible to core energy.

    The simulator's routers already count launches and ejections; this
    helper derives event counts from them (each launched flit implies one
    buffer write on arrival, one read on departure, one crossbar pass and
    one arbitration; ejected flits skip the crossbar).
    """

    flits_switched: int = 0
    flits_ejected: int = 0
    extra_arbitrations: int = 0

    @classmethod
    def from_simulator(cls, simulator) -> "RouterEnergyCounters":
        switched = sum(router.flits_launched for router in simulator.routers)
        ejected = sum(router.flits_ejected for router in simulator.routers)
        return cls(flits_switched=switched, flits_ejected=ejected)

    def energy_j(self, model: RouterEnergyModel) -> float:
        switched = self.flits_switched * (
            model.buffer_write_j
            + model.buffer_read_j
            + model.crossbar_traversal_j
            + model.arbitration_j
        )
        ejected = self.flits_ejected * (
            model.buffer_write_j + model.buffer_read_j + model.arbitration_j
        )
        retries = self.extra_arbitrations * model.arbitration_j
        return switched + ejected + retries


def core_energy_comparison(simulator_baseline, simulator_dvs, clock_hz: float):
    """Mean core power for two finished simulators (paper's Sec 4.2 claim).

    Returns ``(baseline_w, dvs_w, relative_change)`` — the change should
    be small: DVS does not add buffer or crossbar events, only (cheap)
    arbitration retries while flits wait for slow links.
    """
    model = RouterEnergyModel()
    results = []
    for simulator in (simulator_baseline, simulator_dvs):
        counters = RouterEnergyCounters.from_simulator(simulator)
        duration_s = simulator.now / clock_hz
        if duration_s <= 0.0:
            raise ConfigError("simulator has not run")
        results.append(counters.energy_j(model) / duration_s)
    baseline_w, dvs_w = results
    change = (dvs_w - baseline_w) / baseline_w if baseline_w > 0.0 else 0.0
    return baseline_w, dvs_w, change
