"""Thin construction/run helpers around the simulator.

This is the single-simulation primitive the execution backends
(:mod:`repro.harness.backends`) map over, and the place where extra
instrumentation observers get attached to the simulator's bus before the
run starts.
"""

from __future__ import annotations

from typing import Iterable

from ..config import SimulationConfig
from ..instrument.bus import Observer
from ..network.simulator import SimulationResult, Simulator


def build_simulator(
    config: SimulationConfig,
    *,
    traffic=None,
    series_window: int = 0,
    observers: Iterable[Observer] = (),
) -> Simulator:
    """Construct a fully wired simulator for *config*.

    Any *observers* are attached to the simulator's instrumentation bus
    (e.g. a :class:`~repro.instrument.trace.TraceRecorder`).
    """
    simulator = Simulator(config, traffic=traffic, series_window=series_window)
    for observer in observers:
        simulator.bus.attach(observer)
    return simulator


def run_simulation(
    config: SimulationConfig,
    *,
    traffic=None,
    series_window: int = 0,
    observers: Iterable[Observer] = (),
) -> SimulationResult:
    """Build, warm up, measure, and summarize one simulation."""
    return build_simulator(
        config, traffic=traffic, series_window=series_window, observers=observers
    ).run()
