"""Per-virtual-channel state.

An :class:`InputVC` couples a flit FIFO with the routing state of the
packet currently being serviced at its head: the output port chosen by
route computation (``out_port``) and the downstream VC claimed by VC
allocation (``out_vc``). Both are reset when the packet's tail flit
departs, at which point the next packet's head (if queued behind) goes
through route computation and VC allocation afresh.

Invariant: because an upstream output VC is held by a single packet from
head to tail, flits of distinct packets never interleave within one VC
FIFO — the state pair always describes the packet at the head.

For the router's allocation-free hot loop the VC also carries *prebound*
aliases of everything its step needs — the buffer's deque and capacity,
its own ``(in_port, in_vc)`` coordinates and switch-allocation request id,
and the input port's occupancy tracker and upstream credit target. The
router fills these in at construction/wiring time so the per-cycle scan
performs no tuple unpacking, list indexing, or dict lookups.
"""

from __future__ import annotations

from .buffers import VCBuffer

#: Sentinel for "not yet computed / allocated".
UNROUTED = -1


class InputVC:
    """One virtual channel of a router input port.

    ``route_options`` caches route computation for the packet at the head:
    a list of ``(out_port, allowed_downstream_vcs)`` pairs in preference
    order, so VC-allocation retries on later cycles skip the routing
    function entirely.
    """

    __slots__ = (
        "buffer",
        "out_port",
        "out_vc",
        "route_options",
        # Hot-path prebindings (see module docstring). ``flits`` aliases
        # ``buffer.flits`` — the deque object is stable for the buffer's
        # lifetime — and ``capacity`` mirrors ``buffer.capacity``.
        "flits",
        "capacity",
        "in_port",
        "in_vc",
        "rid",
        "tracker",
        "credit_target",
        # Membership flag for the router's occupied-VC list (kept by the
        # enqueue sites and the router's scan; see Router._occ_list).
        "in_occ",
    )

    def __init__(self, capacity: int):
        self.buffer = VCBuffer(capacity)
        self.out_port = UNROUTED
        self.out_vc = UNROUTED
        self.route_options: list[tuple[int, tuple[int, ...]]] | None = None
        self.flits = self.buffer.flits
        self.capacity = self.buffer.capacity
        self.in_port = UNROUTED
        self.in_vc = UNROUTED
        self.rid = UNROUTED
        self.tracker = None
        self.credit_target: tuple[int, int] | None = None
        self.in_occ = False

    @property
    def needs_route(self) -> bool:
        """A head flit waits at the front with no output port chosen."""
        head = self.buffer.head()
        return head is not None and head.is_head and self.out_port == UNROUTED

    @property
    def active(self) -> bool:
        """A packet holds this VC (route computed, not yet fully departed)."""
        return self.out_port != UNROUTED

    def claim(self) -> tuple[int, int] | None:
        """The ``(out_port, out_vc)`` this VC's head packet holds, or None.

        For a packet being ejected locally the pair is ``(local_port, 0)``;
        for a routed-but-unallocated packet ``out_vc`` is :data:`UNROUTED`.
        """
        if self.out_port == UNROUTED:
            return None
        return (self.out_port, self.out_vc)

    def reset_route(self) -> None:
        """Clear routing state after the tail departs."""
        self.out_port = UNROUTED
        self.out_vc = UNROUTED
        self.route_options = None
