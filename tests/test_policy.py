"""Tests for DVS policies (Algorithm 1 and baselines)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import (
    AdaptiveThresholdPolicy,
    AlwaysMaxPolicy,
    DVSAction,
    HistoryDVSPolicy,
    LinkUtilizationOnlyPolicy,
    PolicyInputs,
    StaticLevelPolicy,
)
from repro.core.thresholds import TABLE1_DEFAULT
from repro.errors import ConfigError


def make_inputs(lu, bu, level=5, max_level=9, cycle=200):
    return PolicyInputs(
        link_utilization=lu,
        buffer_utilization=bu,
        level=level,
        max_level=max_level,
        cycle=cycle,
    )


class TestHistoryDVSPolicy:
    def test_low_lu_steps_down(self):
        policy = HistoryDVSPolicy()
        # Feed constant low LU until the EWMA settles under T_low.
        action = None
        for _ in range(10):
            action = policy.decide(make_inputs(lu=0.05, bu=0.1))
        assert action is DVSAction.STEP_DOWN

    def test_high_lu_steps_up(self):
        policy = HistoryDVSPolicy()
        action = None
        for _ in range(10):
            action = policy.decide(make_inputs(lu=0.9, bu=0.1))
        assert action is DVSAction.STEP_UP

    def test_band_holds(self):
        policy = HistoryDVSPolicy()
        action = None
        for _ in range(10):
            action = policy.decide(make_inputs(lu=0.35, bu=0.1))
        assert action is DVSAction.HOLD

    def test_congestion_litmus_switches_thresholds(self):
        """LU = 0.5 steps UP when uncongested but DOWN when congested."""
        uncongested = HistoryDVSPolicy()
        congested = HistoryDVSPolicy()
        for _ in range(10):
            action_light = uncongested.decide(make_inputs(lu=0.5, bu=0.1))
            action_heavy = congested.decide(make_inputs(lu=0.5, bu=0.9))
        assert action_light is DVSAction.STEP_UP
        assert action_heavy is DVSAction.STEP_DOWN

    def test_first_window_uses_ewma(self):
        # One high observation from a cold start: prediction = 3/4 of it.
        policy = HistoryDVSPolicy()
        policy.decide(make_inputs(lu=1.0, bu=0.0))
        assert policy.predicted_link_utilization == pytest.approx(0.75)

    def test_ewma_smooths_transients(self):
        """One moderately busy window after idleness is damped (paper 3.2):
        raw LU 0.5 would step up, but the EWMA holds at (3*0.5+0)/4."""
        policy = HistoryDVSPolicy()
        for _ in range(20):
            policy.decide(make_inputs(lu=0.0, bu=0.1))
        action = policy.decide(make_inputs(lu=0.5, bu=0.1))
        assert policy.predicted_link_utilization == pytest.approx(0.375)
        assert action is DVSAction.HOLD

    def test_reset(self):
        policy = HistoryDVSPolicy()
        for _ in range(5):
            policy.decide(make_inputs(lu=0.9, bu=0.9))
        policy.reset()
        assert policy.predicted_link_utilization == 0.0
        assert policy.predicted_buffer_utilization == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        lu=st.floats(min_value=0.0, max_value=1.0),
        bu=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_steady_state_decision_matches_thresholds(self, lu, bu):
        """After convergence the decision is the paper's Algorithm 1 on the
        raw inputs."""
        policy = HistoryDVSPolicy()
        for _ in range(60):
            action = policy.decide(make_inputs(lu=lu, bu=bu))
        t_low, t_high = TABLE1_DEFAULT.select(policy.predicted_buffer_utilization)
        predicted = policy.predicted_link_utilization
        if predicted < t_low - 1e-6:
            assert action is DVSAction.STEP_DOWN
        elif predicted > t_high + 1e-6:
            assert action is DVSAction.STEP_UP


class TestBaselines:
    def test_always_max_climbs(self):
        policy = AlwaysMaxPolicy()
        assert policy.decide(make_inputs(0.0, 0.0, level=3)) is DVSAction.STEP_UP
        assert policy.decide(make_inputs(0.0, 0.0, level=9)) is DVSAction.HOLD

    def test_static_level_tracks_target(self):
        policy = StaticLevelPolicy(4)
        assert policy.decide(make_inputs(0.5, 0.5, level=2)) is DVSAction.STEP_UP
        assert policy.decide(make_inputs(0.5, 0.5, level=6)) is DVSAction.STEP_DOWN
        assert policy.decide(make_inputs(0.5, 0.5, level=4)) is DVSAction.HOLD

    def test_static_level_clamps_to_max(self):
        policy = StaticLevelPolicy(20)
        assert policy.decide(make_inputs(0.5, 0.5, level=9)) is DVSAction.HOLD

    def test_static_level_validation(self):
        with pytest.raises(ConfigError):
            StaticLevelPolicy(-1)

    def test_lu_only_ignores_congestion(self):
        """The strawman keeps stepping up at LU=0.5 even under congestion."""
        policy = LinkUtilizationOnlyPolicy()
        for _ in range(10):
            action = policy.decide(make_inputs(lu=0.5, bu=0.95))
        assert action is DVSAction.STEP_UP

    def test_lu_only_reset(self):
        policy = LinkUtilizationOnlyPolicy()
        policy.decide(make_inputs(0.8, 0.0))
        policy.reset()
        assert policy.predicted_link_utilization == 0.0


class TestAdaptiveThresholdPolicy:
    def test_becomes_more_aggressive_when_calm(self):
        policy = AdaptiveThresholdPolicy(patience=3)
        start_low = policy.current_light_load_pair[0]
        for _ in range(30):
            policy.decide(make_inputs(lu=0.35, bu=0.05))
        assert policy.current_light_load_pair[0] > start_low

    def test_backs_off_under_pressure(self):
        policy = AdaptiveThresholdPolicy(patience=2)
        for _ in range(20):
            policy.decide(make_inputs(lu=0.35, bu=0.05))
        aggressive_low = policy.current_light_load_pair[0]
        for _ in range(10):
            policy.decide(make_inputs(lu=0.35, bu=0.45))
        assert policy.current_light_load_pair[0] < aggressive_low

    def test_bounds_respected(self):
        policy = AdaptiveThresholdPolicy(patience=1, floor_low=0.2, ceiling_low=0.5)
        for _ in range(200):
            policy.decide(make_inputs(lu=0.35, bu=0.0))
        assert policy.current_light_load_pair[0] <= 0.5
        for _ in range(200):
            policy.decide(make_inputs(lu=0.35, bu=0.45))
        assert policy.current_light_load_pair[0] >= 0.2

    def test_reset_restores_base(self):
        policy = AdaptiveThresholdPolicy(patience=1)
        for _ in range(50):
            policy.decide(make_inputs(lu=0.35, bu=0.0))
        policy.reset()
        assert policy.current_light_load_pair[0] == TABLE1_DEFAULT.low_uncongested

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveThresholdPolicy(step=0.0)
        with pytest.raises(ConfigError):
            AdaptiveThresholdPolicy(patience=0)
        with pytest.raises(ConfigError):
            AdaptiveThresholdPolicy(comfort_bu=0.5, danger_bu=0.4)
