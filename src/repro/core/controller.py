"""Per-port DVS controller: wires measurement to policy to actuation.

One controller sits at each router output port (paper Figure 6). Every
history window of ``H`` router cycles it:

1. reads the channel's accumulated busy time (the hardware's busy-cycle
   counter combined with the clock-ratio counter) and converts the window's
   delta to link utilization (paper Eq. (2));
2. reads the time-integral of downstream input-buffer occupancy — available
   for free from the credit counters any credit-flow-controlled router
   already maintains — and converts the window's delta to buffer
   utilization (paper Eq. (3));
3. runs the policy and, if it prescribes a step, asks the channel state
   machine to move one level. Requests during an in-flight transition are
   dropped by the channel and simply retried at a later window.

The occupancy counter is cumulative on the producer side; the controller
differences it against its own last reading so that profiling probes can
observe the same counter without interference (the increments are
integer-valued floats, so the subtraction is exact). Busy time instead
uses the channel's reset-based ``busy_window`` accumulator: a window's
utilization is then computed from the same float increments whatever the
channel's earlier history — the base-independence the batched kernel's
class re-merging relies on (profilers still have the cumulative
``busy_cycles_total`` alongside it).

The controller is deliberately thin: all prediction state lives in the
policy, all transition state in the channel, so each piece is independently
testable.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import ConfigError
from .dvs_link import DVSChannel
from .policy import DVSAction, DVSPolicy, PolicyInputs


class OccupancySource(Protocol):
    """Anything reporting a cumulative buffer-occupancy time integral.

    The network's :class:`~repro.network.flowcontrol.OccupancyTracker`
    implements this; tests use stubs.
    """

    def cumulative_integral(self, now: int) -> float:
        """Occupied-slots x cycles accumulated since cycle 0."""
        ...


class PortDVSController:
    """Controls the DVS channel of one router output port."""

    __slots__ = (
        "channel",
        "policy",
        "window_cycles",
        "buffer_capacity",
        "occupancy_source",
        "windows_evaluated",
        "actions_taken",
        "requests_dropped",
        "last_link_utilization",
        "last_buffer_utilization",
        "_last_occupancy_integral",
    )

    def __init__(
        self,
        channel: DVSChannel,
        policy: DVSPolicy,
        occupancy_source: OccupancySource,
        *,
        window_cycles: int = 200,
        buffer_capacity: int = 128,
    ) -> None:
        if window_cycles <= 0:
            raise ConfigError("history window must be positive")
        if buffer_capacity <= 0:
            raise ConfigError("buffer capacity must be positive")
        self.channel = channel
        self.policy = policy
        self.occupancy_source = occupancy_source
        self.window_cycles = window_cycles
        self.buffer_capacity = buffer_capacity
        self.windows_evaluated = 0
        self.actions_taken = {action: 0 for action in DVSAction}
        self.requests_dropped = 0
        self.last_link_utilization = 0.0
        self.last_buffer_utilization = 0.0
        self._last_occupancy_integral = 0.0

    def close_window(self, now: int) -> DVSAction:
        """Evaluate one history window ending at router cycle *now*."""
        channel = self.channel
        # Sync energy accrual to the window boundary so every engine —
        # scalar or batched, whatever it did between boundaries — holds
        # the channel at the same quantization point here.
        channel.finalize(now)
        busy = channel.busy_window
        channel.busy_window = 0.0
        link_utilization = min(1.0, busy / self.window_cycles)

        occupancy_total = self.occupancy_source.cumulative_integral(now)
        occupancy = occupancy_total - self._last_occupancy_integral
        self._last_occupancy_integral = occupancy_total
        buffer_utilization = min(
            1.0, occupancy / (self.window_cycles * self.buffer_capacity)
        )

        self.last_link_utilization = link_utilization
        self.last_buffer_utilization = buffer_utilization

        asleep = channel.sleeping
        action = self.policy.decide(
            PolicyInputs(
                link_utilization=link_utilization,
                buffer_utilization=buffer_utilization,
                level=channel.level,
                max_level=channel.table.max_level,
                cycle=now,
                asleep=asleep,
                sleep_demand=channel.sleep_demand,
            )
        )
        if asleep:
            # The policy has seen this window's wake demand; re-arm it.
            channel.sleep_demand = False
        self.windows_evaluated += 1
        self.actions_taken[action] += 1

        if self.policy.has_replay:
            replay_flits = self.policy.consume_replay_flits()
            if replay_flits:
                channel.charge_replay(replay_flits, now)

        if action is DVSAction.SLEEP:
            if not channel.request_sleep(now):
                self.requests_dropped += 1
        elif action is DVSAction.WAKE:
            if not channel.request_wake(now):
                self.requests_dropped += 1
        elif action is not DVSAction.HOLD:
            target = channel.level + action.value
            accepted = channel.request_level(target, now)
            if not accepted:
                self.requests_dropped += 1
        return action
