"""ASCII table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ExperimentError


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    columns: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render *rows* under *columns* as a fixed-width text table."""
    if not columns:
        raise ExperimentError("need at least one column")
    cells = [[_format_cell(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(columns):
            raise ExperimentError(
                f"row width {len(row)} does not match {len(columns)} columns"
            )
    widths = [
        max(len(str(column)), *(len(row[i]) for row in cells), 1)
        if cells
        else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths, strict=False))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths, strict=False)))
    return "\n".join(lines)
