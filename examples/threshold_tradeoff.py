#!/usr/bin/env python3
"""The power/latency dial: sweep the paper's Table 2 threshold settings.

Reproduces a small version of Figures 13-15: the same network and workload
run under each threshold setting I..VI, from conservative (I) to
aggressive (VI), showing that thresholds trade latency for power savings
along a Pareto frontier.

Run:  python examples/threshold_tradeoff.py
"""

from repro import TABLE2_SETTINGS, DVSControlConfig
from repro.harness.runner import run_simulation
from repro.harness.scales import SMOKE_SCALE


def main() -> None:
    rate = 0.9  # packets/cycle across the 4x4 smoke-scale mesh
    print(f"Sweeping Table 2 threshold settings at {rate} packets/cycle...\n")
    print(f"{'setting':>8} {'TL_low':>7} {'TL_high':>8} {'latency':>9} {'savings':>8}")
    print("-" * 45)
    frontier = []
    for name, thresholds in TABLE2_SETTINGS.items():
        config = SMOKE_SCALE.simulation(
            rate,
            dvs=DVSControlConfig(policy="history", thresholds=thresholds),
            workload_overrides={"average_tasks": 30},
        )
        result = run_simulation(config)
        frontier.append((name, result))
        print(
            f"{name:>8} {thresholds.low_uncongested:>7.2f} "
            f"{thresholds.high_uncongested:>8.2f} "
            f"{result.latency.mean:>9.1f} {result.power.savings_factor:>7.2f}X"
        )

    print("\nReading the dial:")
    first, last = frontier[0][1], frontier[-1][1]
    print(
        f"  setting I   -> {first.power.savings_factor:.1f}X savings at "
        f"{first.latency.mean:.0f}-cycle latency"
    )
    print(
        f"  setting VI  -> {last.power.savings_factor:.1f}X savings at "
        f"{last.latency.mean:.0f}-cycle latency"
    )
    print(
        "  Higher thresholds step links down sooner: more power saved, more\n"
        "  serialization and queueing latency — the Figure 15 Pareto curve."
    )


if __name__ == "__main__":
    main()
