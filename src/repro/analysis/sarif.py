"""SARIF 2.1.0 export for the static-analysis framework.

Emits the minimal subset GitHub code scanning consumes: one run, one
tool (``repro-lint``) with a rule descriptor per rule id, and one result
per finding with a physical location. Baseline-matched findings are
*not* exported — code scanning should annotate only what a PR must act
on — which mirrors the CLI's exit-code contract.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from .model import Violation

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


def render(
    violations: Sequence[Violation],
    rules: Mapping[str, str],
    *,
    tool_name: str = "repro-lint",
    information_uri: str = "docs/static_analysis.md",
) -> str:
    """Render *violations* as a SARIF 2.1.0 JSON document."""
    # Rule-index order (R1..R11), then any rule ids the mapping misses.
    extra = {violation.rule for violation in violations} - set(rules)
    used = list(rules) + sorted(extra)
    descriptors = [
        {
            "id": rule,
            "name": rules.get(rule, rule),
            "shortDescription": {"text": rules.get(rule, rule)},
            "helpUri": information_uri,
        }
        for rule in used
    ]
    rule_index = {rule: index for index, rule in enumerate(used)}
    results = [
        {
            "ruleId": violation.rule,
            "ruleIndex": rule_index.get(violation.rule, -1),
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": information_uri,
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
