"""Tests for the batched execution backend (BatchedBackend) and its
scalar-fallback worker, run_config_batch.

The batched kernel is an optimization, never a semantics change: these
tests pin that the backend's outputs equal the scalar backends' point for
point, that the per-point cache still short-circuits simulation, and that
a failing batch is evicted and retried scalar (PR-5 resilience).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.thresholds import TABLE2_SETTINGS
from repro.errors import ExperimentError
from repro.harness import backends
from repro.harness.backends import (
    BatchedBackend,
    SerialBackend,
    make_backend,
    run_config_batch,
)
from repro.harness.resilience import RetryPolicy
from repro.harness.sweep import rate_sweep

from .conftest import small_config

FAIL_FAST = RetryPolicy(max_attempts=1, backoff_base_s=0.0)


class _BoomEngine:
    """Stand-in for BatchedEngine that always fails to construct."""

    def __init__(self, *args, **kwargs):
        raise RuntimeError("kaboom")


def knob_sweep(seeds=(1,)):
    """A small knob sweep: one compatibility group per seed."""
    configs = []
    for seed in seeds:
        base = small_config(
            policy="history", rate=0.3, warmup=200, measure=600, seed=seed
        )
        configs.extend(
            dataclasses.replace(
                base,
                dvs=dataclasses.replace(
                    base.dvs, thresholds=thresholds, ewma_weight=weight
                ),
            )
            for weight in (1.0, 3.0)
            for thresholds in (TABLE2_SETTINGS["I"], TABLE2_SETTINGS["IV"])
        )
    return configs


class TestMakeBackendKernel:
    def test_batched_kernel_selects_batched_backend(self):
        backend = make_backend(None, kernel="batched")
        assert isinstance(backend, BatchedBackend)
        assert backend.processes == 1

    def test_batched_kernel_with_processes(self):
        backend = make_backend(3, chunksize=8, kernel="batched")
        assert isinstance(backend, BatchedBackend)
        assert backend.processes == 3
        assert backend.max_batch == 8

    def test_scalar_kernel_is_the_default(self):
        assert isinstance(make_backend(1), SerialBackend)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ExperimentError, match="unknown kernel"):
            make_backend(1, kernel="vectorized")

    def test_repr_names_the_backend(self):
        assert "BatchedBackend" in repr(BatchedBackend(2, chunksize=4))


class TestBatchedEquivalence:
    def test_serial_and_batched_backends_agree(self):
        """Acceptance: batched results equal scalar results, point for
        point, through the in-process and pooled paths alike."""
        configs = knob_sweep(seeds=(1, 5))
        scalar_results, scalar_report = SerialBackend(retry=FAIL_FAST).run(
            configs
        )
        inline_results, inline_report = BatchedBackend(retry=FAIL_FAST).run(
            configs
        )
        pooled_results, pooled_report = BatchedBackend(
            2, chunksize=4, retry=FAIL_FAST
        ).run(configs)
        assert scalar_report.ok and inline_report.ok and pooled_report.ok
        assert inline_results == scalar_results
        assert pooled_results == scalar_results

    def test_rate_sweep_through_batched_backend(self):
        """Rate points never share a compatibility key (different traffic),
        so a batched rate sweep degrades to singleton batches — and must
        still equal the serial sweep exactly."""
        config = small_config(policy="history", rate=0.2, warmup=200, measure=600)
        rates = (0.2, 0.4)
        serial = rate_sweep(config, rates, backend=SerialBackend())
        batched = rate_sweep(config, rates, backend=BatchedBackend())
        assert batched == serial


def divergent_sweep():
    """A threshold/weight grid known to split into two classes on the
    4x4 two-level reference scenario."""
    base = small_config(
        radix=4, policy="history", rate=0.6, warmup=200, measure=600,
        workload_kind="two_level", seed=7, average_tasks=5,
        average_task_duration_s=3.0e-6,
    )
    return [
        dataclasses.replace(
            base,
            dvs=dataclasses.replace(
                base.dvs, thresholds=thresholds, ewma_weight=weight
            ),
        )
        for weight in (1.0, 3.0)
        for thresholds in (TABLE2_SETTINGS["I"], TABLE2_SETTINGS["IV"])
    ]


class TestFanout:
    """Divergence overflow: a batch past its class budget is re-run as
    class-aligned sub-batches — bit-identically."""

    def test_inline_fanout_is_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        configs = divergent_sweep()
        scalar_results, _ = SerialBackend(retry=FAIL_FAST).run(configs)
        lines = []
        backend = BatchedBackend(
            retry=FAIL_FAST, fanout_classes=1, progress=lines.append
        )
        results, report = backend.run(configs)
        assert report.ok  # fan-out is recovered, not a failure
        assert results == scalar_results
        assert backend.kernel_stats["fanouts"] == 1
        fanouts = [
            incident
            for incident in report.incidents
            if incident.outcome == "batch-fanout"
        ]
        assert len(fanouts) == 1
        assert fanouts[0].recovered
        assert fanouts[0].points == len(configs)
        assert any(line.startswith("fan-out:") for line in lines)

    def test_pooled_fanout_is_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        configs = divergent_sweep()
        scalar_results, _ = SerialBackend(retry=FAIL_FAST).run(configs)
        backend = BatchedBackend(2, retry=FAIL_FAST, fanout_classes=1)
        results, report = backend.run(configs)
        assert report.ok
        assert results == scalar_results
        assert backend.kernel_stats["fanouts"] == 1

    def test_pooled_default_budget_is_the_worker_count(self):
        assert BatchedBackend(3).fanout_classes == 3
        assert BatchedBackend().fanout_classes is None

    def test_bad_budget_rejected(self):
        with pytest.raises(ExperimentError, match="fanout_classes"):
            BatchedBackend(fanout_classes=0)

    def test_progress_reports_per_batch_divergence(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        lines = []
        backend = BatchedBackend(retry=FAIL_FAST, progress=lines.append)
        _, report = backend.run(divergent_sweep())
        assert report.ok
        assert backend.kernel_stats["batches"] == 1
        assert backend.kernel_stats["splits"] >= 1
        assert any(
            "classes=" in line and "splits=" in line and "merges=" in line
            for line in lines
        )


class TestBatchedCache:
    def test_cache_hits_skip_simulation_entirely(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        configs = knob_sweep()
        first, report = BatchedBackend(retry=FAIL_FAST).run(configs)
        assert report.ok and None not in first
        # Second run must be served from the per-point cache: poison both
        # the batched worker and the scalar fallback so any simulation
        # attempt fails loudly.
        monkeypatch.setattr(backends, "BatchedEngine", _BoomEngine)
        monkeypatch.setattr(
            backends,
            "run_point",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("cache miss")),
        )
        second, report = BatchedBackend(retry=FAIL_FAST).run(configs)
        assert report.ok
        assert second == first


class TestBatchEviction:
    def test_failing_batch_is_evicted_and_retried_scalar(self, monkeypatch):
        configs = knob_sweep()
        scalar_results, _ = SerialBackend(retry=FAIL_FAST).run(configs)
        monkeypatch.setattr(backends, "BatchedEngine", _BoomEngine)
        results, report = BatchedBackend(retry=FAIL_FAST).run(configs)
        assert results == scalar_results
        assert report.ok  # eviction recovered: holes would break ok
        evictions = [
            incident
            for incident in report.incidents
            if incident.outcome == "batch-evicted"
        ]
        assert len(evictions) == 1
        assert evictions[0].recovered
        assert evictions[0].points == len(configs)
        assert "kaboom" in evictions[0].error

    def test_single_member_batch_never_builds_the_engine(self, monkeypatch):
        monkeypatch.setattr(backends, "BatchedEngine", _BoomEngine)
        outcomes, incidents, stats = run_config_batch(
            [small_config(rate=0.2, warmup=100, measure=300)], FAIL_FAST
        )
        assert incidents == []
        assert stats is None
        result, failure = outcomes[0]
        assert failure is None and result is not None

    def test_sanitize_env_forces_the_scalar_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setattr(backends, "BatchedEngine", _BoomEngine)
        configs = knob_sweep()[:2]
        outcomes, incidents, stats = run_config_batch(configs, FAIL_FAST)
        # No eviction incident: the batched engine was never constructed,
        # the sanitizer ran on the scalar per-point path.
        assert incidents == []
        assert stats is None
        assert all(failure is None for _, failure in outcomes)
        assert all(result is not None for result, _ in outcomes)
