"""Hardware cost model of the per-port DVS controller (paper Section 3.3).

The paper reports that the controller synthesizes to ~500 equivalent logic
gates per router port and dissipates under 3 mW, and that it is off the
router's critical path. We cannot re-run Synopsys here, so this module
reproduces the estimate from a component inventory with per-component
gate-equivalent costs drawn from standard-cell rules of thumb:

* a D flip-flop ~ 6 gate equivalents (NAND2 = 1);
* a full adder ~ 5 gate equivalents;
* an n-bit ripple counter ~ n flip-flops + n/2 gates of increment logic;
* a radix-4 Booth multiplier of n x m bits ~ (n*m)/2 full adders of array
  plus recoding, here sized for the two small utilization counters;
* a magnitude comparator ~ 1.5 gates per bit pair.

Power scales the gate count by a per-gate dynamic power at the router clock
(TSMC 0.25 um, 2.5 V standard cells: ~2-4 uW per gate-equivalent at 1 GHz
with moderate activity), which lands in the paper's <3 mW envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError

#: Gate equivalents per D flip-flop.
GATES_PER_FLIPFLOP = 6.0
#: Gate equivalents per full adder.
GATES_PER_FULL_ADDER = 5.0
#: Gate equivalents per comparator bit pair.
GATES_PER_COMPARATOR_BIT = 1.5


@dataclass(frozen=True, slots=True)
class ControllerHardwareModel:
    """Gate-count and power estimate of one port's DVS controller.

    Attributes:
        history_window: H, which sizes the busy-cycle counter.
        buffer_capacity: downstream buffer slots, which sizes the occupancy
            path width.
        utilization_bits: fixed-point fraction bits used for LU/BU values.
        clock_hz: router clock for the power estimate.
        gate_power_w: dynamic power per gate equivalent at ``clock_hz``
            (activity-weighted).
    """

    history_window: int = 200
    buffer_capacity: int = 128
    utilization_bits: int = 8
    clock_hz: float = 1.0e9
    gate_power_w: float = 3.0e-6
    threshold_count: int = field(default=4)

    def __post_init__(self) -> None:
        if self.history_window <= 0 or self.buffer_capacity <= 0:
            raise ConfigError("window and buffer capacity must be positive")
        if self.utilization_bits <= 0:
            raise ConfigError("utilization width must be positive")
        if self.clock_hz <= 0.0 or self.gate_power_w <= 0.0:
            raise ConfigError("clock and per-gate power must be positive")

    # -- sub-block gate counts -----------------------------------------

    @property
    def busy_counter_bits(self) -> int:
        """Bits to count busy link cycles within one window."""
        return max(1, math.ceil(math.log2(self.history_window + 1)))

    @property
    def clock_ratio_counter_bits(self) -> int:
        """Bits for the router/link clock-ratio counter (paper Fig. 6)."""
        return 4  # ratio spans 1..8 at the paper's ten levels

    def counter_gates(self, bits: int) -> float:
        """Gate equivalents of one *bits*-wide counter."""
        return bits * GATES_PER_FLIPFLOP + bits / 2.0

    @property
    def booth_multiplier_gates(self) -> float:
        """Booth multiplier combining busy count with the clock ratio."""
        n = self.busy_counter_bits
        m = self.clock_ratio_counter_bits
        array = (n * m) / 2.0 * GATES_PER_FULL_ADDER
        recoding = m * 3.0
        return array + recoding

    @property
    def ewma_datapath_gates(self) -> float:
        """Shift-and-add EWMA (W=3): one adder plus wiring, two operands."""
        return self.utilization_bits * GATES_PER_FULL_ADDER

    @property
    def history_register_gates(self) -> float:
        """Two registers holding LU_past and BU_past."""
        return 2 * self.utilization_bits * GATES_PER_FLIPFLOP

    @property
    def comparator_gates(self) -> float:
        """Threshold comparators (four thresholds + congestion litmus)."""
        comparators = self.threshold_count + 1
        return comparators * self.utilization_bits * GATES_PER_COMPARATOR_BIT

    @property
    def control_fsm_gates(self) -> float:
        """Window sequencing and output-signal logic (small FSM)."""
        return 60.0

    # -- totals ---------------------------------------------------------

    @property
    def total_gates(self) -> float:
        """Total gate-equivalent count per router port."""
        return (
            self.counter_gates(self.busy_counter_bits)
            + self.counter_gates(self.clock_ratio_counter_bits)
            + self.booth_multiplier_gates
            + self.ewma_datapath_gates
            + self.history_register_gates
            + self.comparator_gates
            + self.control_fsm_gates
        )

    @property
    def power_w(self) -> float:
        """Estimated controller power per router port (W)."""
        return self.total_gates * self.gate_power_w

    def breakdown(self) -> dict[str, float]:
        """Gate-equivalents per sub-block."""
        return {
            "busy_counter": self.counter_gates(self.busy_counter_bits),
            "clock_ratio_counter": self.counter_gates(self.clock_ratio_counter_bits),
            "booth_multiplier": self.booth_multiplier_gates,
            "ewma_datapath": self.ewma_datapath_gates,
            "history_registers": self.history_register_gates,
            "comparators": self.comparator_gates,
            "control_fsm": self.control_fsm_gates,
        }

    def describe(self) -> str:
        """Text rendering of the area/power estimate."""
        lines = ["DVS controller hardware estimate (per router port)"]
        for name, gates in self.breakdown().items():
            lines.append(f"  {name:<22} {gates:>7.1f} gate-eq")
        lines.append(f"  {'TOTAL':<22} {self.total_gates:>7.1f} gate-eq")
        lines.append(f"  power @ {self.clock_hz / 1e9:.1f} GHz: {self.power_w * 1e3:.2f} mW")
        return "\n".join(lines)
