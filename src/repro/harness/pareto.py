"""Cross-policy power-vs-latency Pareto frontier explorer.

The paper's Figs 13–15 trade power against latency along the threshold
dial of a single policy. With the policy registry the same question
generalizes: *across every registered policy and its declared knob grid,
which operating points are non-dominated?* This module runs that
campaign and answers it with per-point provenance.

The sweep is one flat batch of frozen configs pushed through the
existing resilient execution machinery
(:mod:`repro.harness.backends` / :mod:`repro.harness.cache` /
:mod:`repro.harness.resilience`), so it inherits everything sweeps
already have: bit-identical Serial/ProcessPool results, content-addressed
incremental checkpoints, ``resume=`` replay, retries and
``failures=`` degradation. Each resulting :class:`ParetoPoint` records
the policy name, the exact knob assignment, the registry display label
and the SHA-256 of the config fingerprint (the cache's content address),
so any point on the frontier can be traced back to — and re-run from —
its precise configuration.

Frontiers are computed *within* each target rate: points at different
offered loads answer different questions and are never compared.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..config import SimulationConfig
from ..core.registry import policy_label, policy_sweep_grid, registered_policies
from ..errors import ExperimentError
from ..network.simulator import SimulationResult
from .backends import ExecutionBackend, default_backend
from .resilience import FailureReport
from .serialization import write_json
from .sweep import _sweep_results, require_resumable_cache


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    """One (policy, knob assignment, offered load) operating point.

    ``fingerprint_sha256`` is the SHA-256 of the underlying config's
    canonical fingerprint — the same content the sweep cache keys on —
    so a frontier point names the exact simulation that produced it.
    """

    policy: str
    label: str
    params: dict[str, float]
    target_rate: float
    offered_rate: float
    accepted_rate: float
    mean_latency: float
    median_latency: float
    normalized_power: float
    savings_factor: float
    transition_count: int
    fingerprint_sha256: str
    on_frontier: bool = False


def pareto_grid(
    policies: Sequence[str] | None = None,
    *,
    grid_overrides: Mapping[str, Sequence[Mapping[str, float]]] | None = None,
) -> list[tuple[str, dict[str, float]]]:
    """The campaign's (policy, knob assignment) list, in declaration order.

    *policies* defaults to every registered policy. Each policy
    contributes the cartesian product of its knobs' declared ``sweep``
    values (a knob-free or sweep-free policy contributes its single
    default assignment); *grid_overrides* replaces the declared grid for
    the named policies.
    """
    names: Sequence[str] = (
        registered_policies() if policies is None else tuple(policies)
    )
    grid: list[tuple[str, dict[str, float]]] = []
    for name in names:
        if grid_overrides is not None and name in grid_overrides:
            assignments = [dict(a) for a in grid_overrides[name]]
        else:
            assignments = policy_sweep_grid(name)
        for assignment in assignments:
            grid.append((name, assignment))
    return grid


def _point_config(
    base_config: SimulationConfig,
    policy: str,
    assignment: Mapping[str, float],
    rate: float,
) -> SimulationConfig:
    dvs = replace(base_config.dvs, policy=policy, params=dict(assignment))
    return base_config.with_dvs(dvs).with_rate(rate)


def pareto_configs(
    base_config: SimulationConfig,
    rates: Sequence[float],
    policies: Sequence[str] | None = None,
    *,
    grid_overrides: Mapping[str, Sequence[Mapping[str, float]]] | None = None,
) -> tuple[list[tuple[str, dict[str, float]]], list[SimulationConfig]]:
    """The campaign's grid and its flat config batch, in run order.

    The batch is grid-outer / rates-inner, matching :func:`run_pareto`
    exactly, so callers can preview cache state
    (:func:`~repro.harness.sweep.resume_preview`) for the same configs a
    subsequent run would execute.
    """
    if not rates:
        raise ExperimentError("need at least one offered rate")
    grid = pareto_grid(policies, grid_overrides=grid_overrides)
    if not grid:
        raise ExperimentError("need at least one policy to explore")
    configs = [
        _point_config(base_config, policy, assignment, rate)
        for policy, assignment in grid
        for rate in rates
    ]
    return grid, configs


def run_pareto(
    base_config: SimulationConfig,
    rates: Sequence[float],
    policies: Sequence[str] | None = None,
    *,
    backend: ExecutionBackend | None = None,
    resume: bool = False,
    failures: FailureReport | None = None,
    grid_overrides: Mapping[str, Sequence[Mapping[str, float]]] | None = None,
) -> list[ParetoPoint]:
    """Sweep every policy's knob grid over *rates* and mark the frontier.

    All points run as ONE flat batch through *backend* (the
    ``REPRO_PROCESSES``-honoring default when omitted), so a process
    pool parallelizes across policies, assignments and rates at once and
    the incremental cache checkpoints the campaign as a unit.
    ``resume``/``failures`` behave as in
    :func:`~repro.harness.sweep.rate_sweep`; failed points become gaps
    (attributable via the returned points' provenance fields).
    """
    if backend is None:
        backend = default_backend()
    if resume:
        require_resumable_cache()
    rate_list = list(rates)
    grid, configs = pareto_configs(
        base_config, rate_list, policies, grid_overrides=grid_overrides
    )
    results = _sweep_results(backend, configs, failures)

    points: list[ParetoPoint] = []
    index = 0
    for policy, assignment in grid:
        label = policy_label(configs[index].dvs)
        for rate in rate_list:
            config, result = configs[index], results[index]
            index += 1
            if result is None:
                continue
            points.append(_make_point(policy, label, assignment, rate, config, result))
    return mark_frontier(points)


def _make_point(
    policy: str,
    label: str,
    assignment: Mapping[str, float],
    rate: float,
    config: SimulationConfig,
    result: SimulationResult,
) -> ParetoPoint:
    digest = hashlib.sha256(config.fingerprint().encode("utf-8")).hexdigest()
    return ParetoPoint(
        policy=policy,
        label=label,
        params=dict(assignment),
        target_rate=rate,
        offered_rate=result.offered_rate,
        accepted_rate=result.accepted_rate,
        mean_latency=result.latency.mean,
        median_latency=result.latency.median,
        normalized_power=result.power.normalized,
        savings_factor=result.power.savings_factor,
        transition_count=result.power.transition_count,
        fingerprint_sha256=digest,
    )


def _dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """Whether *a* is at least as good as *b* on both axes, better on one."""
    if a.normalized_power > b.normalized_power or a.mean_latency > b.mean_latency:
        return False
    return (
        a.normalized_power < b.normalized_power or a.mean_latency < b.mean_latency
    )


def mark_frontier(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Set ``on_frontier`` per target rate, minimizing (power, latency).

    Points whose latency is NaN (no packets completed) never join the
    frontier. Input order is preserved.
    """
    valid = [
        p for p in points if p.mean_latency == p.mean_latency  # NaN check
    ]
    frontier_ids: set[int] = set()
    for candidate in valid:
        dominated = any(
            other is not candidate
            and other.target_rate == candidate.target_rate
            and _dominates(other, candidate)
            for other in valid
        )
        if not dominated:
            frontier_ids.add(id(candidate))
    return [replace(p, on_frontier=id(p) in frontier_ids) for p in points]


def frontier(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Only the non-dominated points, in input order."""
    return [p for p in points if p.on_frontier]


#: Column order shared by the CSV artifact and tabular rendering.
PARETO_COLUMNS: tuple[str, ...] = (
    "policy",
    "label",
    "params",
    "target_rate",
    "offered_rate",
    "accepted_rate",
    "mean_latency",
    "median_latency",
    "normalized_power",
    "savings_factor",
    "transition_count",
    "on_frontier",
    "fingerprint_sha256",
)


def _render_params(params: Mapping[str, float]) -> str:
    return ";".join(f"{k}={params[k]:g}" for k in sorted(params))


def write_pareto_json(points: Sequence[ParetoPoint], path: str) -> None:
    """Write the campaign as a JSON artifact with per-point provenance."""
    write_json(
        {
            "columns": list(PARETO_COLUMNS),
            "points": list(points),
            "frontier_labels": [
                f"{p.label} @ {p.target_rate:g}" for p in frontier(points)
            ],
        },
        path,
    )


def write_pareto_csv(points: Sequence[ParetoPoint], path: str) -> None:
    """Write the campaign as a flat CSV (one row per point)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(PARETO_COLUMNS)
        for p in points:
            writer.writerow(
                [
                    p.policy,
                    p.label,
                    _render_params(p.params),
                    p.target_rate,
                    p.offered_rate,
                    p.accepted_rate,
                    p.mean_latency,
                    p.median_latency,
                    p.normalized_power,
                    p.savings_factor,
                    p.transition_count,
                    int(p.on_frontier),
                    p.fingerprint_sha256,
                ]
            )
