"""Command-line interface.

Eight subcommands::

    python -m repro describe                    # static tables and models
    python -m repro policies                    # registered DVS policies
    python -m repro run --rate 1.0 --policy history
    python -m repro sweep --rates 0.3,0.9,1.5   # DVS vs non-DVS comparison
    python -m repro pareto --rates 0.9          # cross-policy frontier
    python -m repro figure fig10 --scale smoke  # regenerate a paper figure
    python -m repro worker --port 8751          # join a distributed sweep
    python -m repro cache-server /path/store    # shared result store

Distributed sweeps: ``repro sweep --backend distributed --workers 4``
spawns a loopback worker fleet for the run; with ``--workers 0`` the
coordinator waits for externally started ``repro worker`` processes
(point them at the coordinator's ``--dist-port``). ``repro
cache-server`` serves a shared result store other hosts consult via the
``REPRO_RESULT_STORE`` environment variable.

All heavy lifting lives in the library; the CLI only parses arguments,
calls the same functions the benchmarks use, and prints the rendered
tables, so everything reachable from the shell is equally reachable (and
tested) from Python. Policy choices and display labels come from the
policy registry (:mod:`repro.core.registry`), so plugins registered
before the parser is built show up everywhere automatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .config import DVSControlConfig
from .core.hardware import ControllerHardwareModel
from .core.levels import PAPER_TABLE
from .core.power_model import PAPER_LINK_POWER
from .core.registry import describe_registry, policy_label, registered_policies
from .core.thresholds import TABLE1_DEFAULT, TABLE2_SETTINGS
from .errors import ConfigError, ReproError
from .harness import cache as sweep_cache
from .harness import experiments
from .harness.backends import make_backend
from .harness.pareto import (
    frontier,
    pareto_configs,
    run_pareto,
    write_pareto_csv,
    write_pareto_json,
)
from .harness.resilience import FailureReport, RetryPolicy
from .harness.runner import build_simulator
from .harness.scales import get_scale
from .harness.serialization import write_json
from .harness.sweep import (
    compare_policies,
    require_resumable_cache,
    resume_preview,
    summarize_comparison,
)
from .harness.tables import render_table
from .instrument.trace import TraceRecorder
from .power.report import format_power_report
from .power.router_power import RouterPowerProfile

#: Figure name -> experiment function (no-argument beyond scale).
FIGURES: dict[str, Callable] = {
    "fig3": experiments.fig3_link_utilization_profile,
    "fig4": experiments.fig4_buffer_utilization_profile,
    "fig5": experiments.fig5_buffer_age_profile,
    "fig7": experiments.fig7_router_power_distribution,
    "fig8": experiments.fig8_spatial_variance,
    "fig9": experiments.fig9_temporal_variance,
    "fig10": experiments.fig10_dvs_vs_nodvs,
    "fig11": experiments.fig11_dvs_vs_nodvs_50tasks,
    "fig12": experiments.fig12_congestion_power,
    "fig13": experiments.fig13_threshold_latency,
    "fig14": experiments.fig14_threshold_power,
    "fig15": experiments.fig15_pareto_curve,
    "fig16a": lambda scale: experiments.fig16_voltage_transition_sweep(scale, panel="a"),
    "fig16b": lambda scale: experiments.fig16_voltage_transition_sweep(scale, panel="b"),
    "fig16c": lambda scale: experiments.fig16_voltage_transition_sweep(scale, panel="c"),
    "fig16d": lambda scale: experiments.fig16_voltage_transition_sweep(scale, panel="d"),
    "fig17a": lambda scale: experiments.fig17_frequency_transition_sweep(scale, panel="a"),
    "fig17b": lambda scale: experiments.fig17_frequency_transition_sweep(scale, panel="b"),
    "fig17c": lambda scale: experiments.fig17_frequency_transition_sweep(scale, panel="c"),
    "fig17d": lambda scale: experiments.fig17_frequency_transition_sweep(scale, panel="d"),
    "headline": experiments.headline_summary,
    "ablation-litmus": experiments.ablation_congestion_litmus,
    "ablation-weight": experiments.ablation_ewma_weight,
    "ablation-window": experiments.ablation_history_window,
    "extension-adaptive": experiments.ablation_adaptive_thresholds,
}

#: Figures whose output is analytical and does not depend on --scale.
SCALE_INDEPENDENT = {"fig7"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dynamic Voltage Scaling with Links' (HPCA 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="print static tables and models")
    describe.set_defaults(func=cmd_describe)

    policies = sub.add_parser(
        "policies", help="list registered DVS policies and their knobs"
    )
    policies.add_argument("--smoke", action="store_true",
                          help="also run every registered policy for one short "
                          "point and report the results")
    policies.add_argument("--sanitize", action="store_true",
                          help="attach the network sanitizer to each smoke run "
                          "(violations fail the command)")
    policies.add_argument("--rate", type=float, default=0.5,
                          help="offered rate for the smoke runs")
    policies.add_argument("--scale", default=None, help="smoke | default | paper")
    policies.add_argument("--seed", type=int, default=1)
    policies.set_defaults(func=cmd_policies)

    run = sub.add_parser("run", help="run one simulation and report")
    run.add_argument("--rate", type=float, default=1.0, help="packets/cycle, network-wide")
    run.add_argument("--policy", choices=registered_policies(), default="history")
    run.add_argument("--tasks", type=int, default=100, help="average concurrent task sessions")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--scale", default=None, help="smoke | default | paper")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a JSONL trace of DVS transitions to PATH")
    run.add_argument("--sanitize", action="store_true",
                     help="attach the network sanitizer (per-cycle "
                     "conservation invariant checks; slower)")
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep", help="rate sweep, DVS vs non-DVS")
    sweep.add_argument("--rates", default="0.3,0.7,1.1,1.5,1.9",
                       help="comma-separated offered rates")
    sweep.add_argument("--scale", default=None)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--processes", type=int, default=1,
                       help="worker processes for the sweep (1 = serial)")
    sweep.add_argument("--kernel", choices=("scalar", "batched"), default="scalar",
                       help="simulation kernel: scalar (default) or batched lockstep sweeps")
    _add_distributed_options(sweep)
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore the on-disk sweep result cache")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted campaign: requires the sweep "
                       "cache, replays checkpointed points, recomputes only "
                       "the missing ones")
    sweep.add_argument("--retries", type=int, default=None, metavar="N",
                       help="attempts per point before it counts as failed "
                       "(default 2: one retry with backoff)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-point wall-clock budget; exceeding it fails "
                       "the attempt (retried like any other failure)")
    sweep.add_argument("--keep-going", action="store_true",
                       help="degrade to partial results plus a failure summary "
                       "instead of aborting when points fail")
    sweep.set_defaults(func=cmd_sweep)

    pareto = sub.add_parser(
        "pareto", help="cross-policy power-vs-latency Pareto frontier"
    )
    pareto.add_argument("--rates", default="0.9",
                        help="comma-separated offered rates (frontier is "
                        "computed within each rate)")
    pareto.add_argument("--policies", default=None,
                        help="comma-separated registered policy names "
                        "(default: every registered policy)")
    pareto.add_argument("--scale", default=None)
    pareto.add_argument("--seed", type=int, default=1)
    pareto.add_argument("--processes", type=int, default=1,
                        help="worker processes for the campaign (1 = serial)")
    pareto.add_argument("--kernel", choices=("scalar", "batched"), default="scalar",
                        help="simulation kernel: scalar (default) or batched lockstep sweeps")
    _add_distributed_options(pareto)
    pareto.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk sweep result cache")
    pareto.add_argument("--resume", action="store_true",
                        help="resume an interrupted campaign from the sweep "
                        "cache, recomputing only the missing points")
    pareto.add_argument("--retries", type=int, default=None, metavar="N",
                        help="attempts per point before it counts as failed")
    pareto.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-point wall-clock budget")
    pareto.add_argument("--keep-going", action="store_true",
                        help="degrade to partial results plus a failure "
                        "summary instead of aborting when points fail")
    pareto.add_argument("--json", default=None, metavar="PATH",
                        help="write the full campaign (points + frontier) to PATH")
    pareto.add_argument("--csv", default=None, metavar="PATH",
                        help="write the campaign as flat CSV to PATH")
    pareto.set_defaults(func=cmd_pareto)

    worker = sub.add_parser(
        "worker", help="join a distributed sweep as a remote worker"
    )
    worker.add_argument("--host", default="127.0.0.1",
                        help="coordinator host to connect to")
    worker.add_argument("--port", type=int, required=True,
                        help="coordinator port (the sweep's --dist-port)")
    worker.add_argument("--worker-id", default=None,
                        help="stable identity for logs and the coordinator "
                        "(default: worker-<pid>)")
    worker.add_argument("--heartbeat", type=float, default=0.25,
                        metavar="SECONDS", help="heartbeat interval")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-event progress on stderr")
    worker.set_defaults(func=cmd_worker)

    cache_server = sub.add_parser(
        "cache-server", help="serve a shared sweep result store over HTTP"
    )
    cache_server.add_argument("root", help="directory holding the store entries")
    cache_server.add_argument("--host", default="127.0.0.1",
                              help="bind address (default loopback; the store "
                              "trusts its network)")
    cache_server.add_argument("--port", type=int, default=8750)
    cache_server.set_defaults(func=cmd_cache_server)

    figure = sub.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--scale", default=None)
    figure.add_argument("--json", default=None, help="also write rows to this path")
    figure.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk sweep result cache")
    figure.add_argument("--resume", action="store_true",
                        help="resume an interrupted campaign from the sweep "
                        "cache (requires caching; reports replayed points)")
    figure.set_defaults(func=cmd_figure)

    return parser


def cmd_describe(args: argparse.Namespace) -> int:
    print(PAPER_TABLE.describe())
    print()
    print(PAPER_LINK_POWER.describe(PAPER_TABLE))
    print()
    print(RouterPowerProfile().describe())
    print()
    print(ControllerHardwareModel().describe())
    print()
    print("Table 1 defaults:", TABLE1_DEFAULT)
    print("Table 2 settings:")
    for name, setting in TABLE2_SETTINGS.items():
        print(f"  {name}: TL=({setting.low_uncongested}, {setting.high_uncongested})")
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    print(describe_registry())
    if not args.smoke:
        return 0
    # Registry-completeness smoke: every registered policy (including
    # factory-less "none") must survive one short point, optionally under
    # the sanitizer. A 10x-shrunk scale keeps this CI-cheap while still
    # crossing enough windows to exercise transitions and sleep/wake.
    scale = get_scale(args.scale).shrink(0.1)
    rows = []
    for name in registered_policies():
        config = scale.simulation(
            args.rate, policy=name, workload_overrides={"seed": args.seed}
        )
        simulator = build_simulator(
            config, sanitize=True if args.sanitize else None
        )
        result = simulator.run()
        rows.append(
            (
                policy_label(config.dvs),
                round(result.accepted_rate, 3),
                round(result.latency.mean, 1),
                round(result.power.normalized, 3),
                result.power.transition_count,
            )
        )
    print()
    print(
        render_table(
            ["policy", "accepted", "mean_lat", "norm_power", "transitions"],
            rows,
            title=f"registry smoke @ {args.rate} pkt/cycle (scale={scale.name}, "
            f"sanitize={'on' if args.sanitize else 'off'})",
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    config = scale.simulation(
        args.rate,
        policy=args.policy,
        workload_overrides={"average_tasks": args.tasks, "seed": args.seed},
    )
    recorder = TraceRecorder(args.trace) if args.trace else None
    observers = (recorder,) if recorder else ()
    simulator = build_simulator(
        config, observers=observers, sanitize=True if args.sanitize else None
    )
    result = simulator.run()
    print(
        render_table(
            ["metric", "value"],
            [
                ("offered packets/cycle", round(result.offered_rate, 3)),
                ("accepted packets/cycle", round(result.accepted_rate, 3)),
                ("mean latency (cycles)", round(result.latency.mean, 1)),
                ("median latency", round(result.latency.median, 1)),
                ("p95 latency", round(result.latency.p95, 1)),
                ("mean DVS level", round(result.mean_level, 2)),
            ],
            title=f"run @ {args.rate} pkt/cycle, policy={args.policy}, "
            f"scale={scale.name}",
        )
    )
    print()
    print(format_power_report(result.power))
    if simulator.sanitizer is not None:
        print()
        print(simulator.sanitizer.describe())
    if recorder is not None:
        recorder.close()
        print(f"\ntrace: {len(recorder.records)} records written to {args.trace}")
    return 0


def _cache_stats_line() -> str | None:
    cache = sweep_cache.get_cache()
    if cache is None:
        return "sweep cache: disabled"
    if cache.hits or cache.misses:
        return f"sweep cache: {cache.describe()}"
    return None


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.no_cache:
        sweep_cache.set_cache(None)
        try:
            return _cmd_sweep(args)
        finally:
            sweep_cache.reset_cache()
    return _cmd_sweep(args)


def _parse_rates(raw: str) -> tuple[float, ...]:
    """One comma-separated --rates argument as floats, or a clean error."""
    try:
        rates = tuple(float(r) for r in raw.split(",") if r.strip())
    except ValueError as exc:
        raise ConfigError(f"bad --rates value {raw!r}: {exc}") from None
    if not rates:
        raise ConfigError(f"--rates needs at least one rate, got {raw!r}")
    return rates


def _kernel_progress(line: str) -> None:
    """Live divergence reporting for ``--kernel batched`` campaigns."""
    print(f"[batched] {line}", file=sys.stderr)


def _fabric_progress(line: str) -> None:
    """Live fabric events (registrations, losses, steals) on stderr."""
    print(f"[distributed] {line}", file=sys.stderr)


def _add_distributed_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=("local", "distributed"),
                        default="local",
                        help="execution backend: local (default) or the "
                        "fault-tolerant distributed fabric")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="with --backend distributed: spawn N loopback "
                        "worker processes (0 = serve externally started "
                        "'repro worker' processes)")
    parser.add_argument("--dist-host", default="127.0.0.1", metavar="HOST",
                        help="coordinator bind address for --backend distributed")
    parser.add_argument("--dist-port", type=int, default=0, metavar="PORT",
                        help="coordinator port for --backend distributed "
                        "(0 = auto; the chosen port is reported on stderr)")


def _campaign_backend(args: argparse.Namespace):
    kernel = getattr(args, "kernel", "scalar")
    backend = getattr(args, "backend", "local")
    if backend == "distributed":
        progress = _fabric_progress
    elif kernel == "batched":
        progress = _kernel_progress
    else:
        progress = None
    return make_backend(
        args.processes,
        retry=_retry_policy(args),
        kernel=kernel,
        progress=progress,
        backend=backend,
        workers=getattr(args, "workers", 0),
        host=getattr(args, "dist_host", "127.0.0.1"),
        port=getattr(args, "dist_port", 0),
    )


def _retry_policy(args: argparse.Namespace) -> RetryPolicy | None:
    """A RetryPolicy from --retries/--timeout, or None for the default."""
    if args.retries is None and args.timeout is None:
        return None
    overrides: dict[str, int | float] = {}
    if args.retries is not None:
        overrides["max_attempts"] = args.retries
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout
    return RetryPolicy(**overrides)  # type: ignore[arg-type]


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    rates = _parse_rates(args.rates)
    base = scale.simulation(rates[0], workload_overrides={"seed": args.seed})
    # Display names come from the registry so custom knob values (or
    # plugin policies swapped in here) label themselves.
    baseline_dvs = DVSControlConfig(policy="none")
    dvs_dvs = DVSControlConfig(policy="history")
    baseline_name = policy_label(baseline_dvs)
    dvs_name = policy_label(dvs_dvs)
    named = {
        baseline_name: base.with_dvs(baseline_dvs),
        dvs_name: base.with_dvs(dvs_dvs),
    }
    if args.resume:
        checkpointed, total = resume_preview(
            config.with_rate(rate) for config in named.values() for rate in rates
        )
        print(
            f"resume: {checkpointed}/{total} points already checkpointed, "
            f"recomputing {total - checkpointed}",
            file=sys.stderr,
        )
    report = FailureReport() if args.keep_going else None
    sweeps = compare_policies(
        base,
        rates,
        {baseline_name: baseline_dvs, dvs_name: dvs_dvs},
        backend=_campaign_backend(args),
        resume=args.resume,
        failures=report,
    )
    # Pair by target rate: with --keep-going a failed point leaves a gap in
    # one sweep but not necessarily the other.
    by_rate = {
        name: {point.target_rate: point for point in points}
        for name, points in sweeps.items()
    }
    common = [
        r for r in rates if r in by_rate[baseline_name] and r in by_rate[dvs_name]
    ]
    rows = [
        (
            b.target_rate,
            round(b.offered_rate, 3),
            round(b.mean_latency, 1),
            round(d.mean_latency, 1),
            round(d.normalized_power, 3),
            round(d.savings_factor, 2),
        )
        for b, d in (
            (by_rate[baseline_name][r], by_rate[dvs_name][r]) for r in common
        )
    ]
    print(
        render_table(
            ["rate", "offered", f"lat_{baseline_name}", f"lat_{dvs_name}",
             "norm_power", "savings"],
            rows,
            title=f"DVS ({dvs_name}) vs non-DVS sweep (scale={scale.name})",
        )
    )
    if common:
        summary = summarize_comparison(
            [by_rate[baseline_name][r] for r in common],
            [by_rate[dvs_name][r] for r in common],
        )
        print()
        print(summary.describe())
    stats = _cache_stats_line()
    if stats:
        print(stats)
    if report is not None and not report.ok:
        print()
        print(report.describe())
        return 1 if report.failures else 0
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    if args.no_cache:
        sweep_cache.set_cache(None)
        try:
            return _cmd_pareto(args)
        finally:
            sweep_cache.reset_cache()
    return _cmd_pareto(args)


def _cmd_pareto(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    rates = _parse_rates(args.rates)
    policies = None
    if args.policies:
        policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    base = scale.simulation(rates[0], workload_overrides={"seed": args.seed})
    if args.resume:
        _, preview = pareto_configs(base, rates, policies)
        checkpointed, total = resume_preview(preview)
        print(
            f"resume: {checkpointed}/{total} points already checkpointed, "
            f"recomputing {total - checkpointed}",
            file=sys.stderr,
        )
    report = FailureReport() if args.keep_going else None
    points = run_pareto(
        base,
        rates,
        policies,
        backend=_campaign_backend(args),
        resume=args.resume,
        failures=report,
    )
    rows = [
        (
            point.label,
            point.target_rate,
            round(point.offered_rate, 3),
            round(point.mean_latency, 1),
            round(point.normalized_power, 3),
            round(point.savings_factor, 2),
            point.transition_count,
            "*" if point.on_frontier else "",
        )
        for point in points
    ]
    print(
        render_table(
            ["policy", "rate", "offered", "mean_lat", "norm_power", "savings",
             "transitions", "frontier"],
            rows,
            title=f"cross-policy Pareto campaign (scale={scale.name})",
        )
    )
    front = frontier(points)
    print()
    print(f"frontier: {len(front)}/{len(points)} points non-dominated")
    for point in front:
        print(
            f"  {point.label} @ {point.target_rate:g}: "
            f"power={point.normalized_power:.3f} "
            f"latency={point.mean_latency:.1f}"
        )
    if args.json:
        write_pareto_json(points, args.json)
        print(f"\ncampaign written to {args.json}")
    if args.csv:
        write_pareto_csv(points, args.csv)
        print(f"csv written to {args.csv}")
    stats = _cache_stats_line()
    if stats:
        print(stats)
    if report is not None and not report.ok:
        print()
        print(report.describe())
        return 1 if report.failures else 0
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    # Imported lazily so plain local commands never touch the fabric.
    from .harness.distributed import run_worker

    return run_worker(
        args.host,
        args.port,
        worker_id=args.worker_id,
        heartbeat_s=args.heartbeat,
        quiet=args.quiet,
    )


def cmd_cache_server(args: argparse.Namespace) -> int:
    from .harness.distributed import serve_result_store

    try:
        serve_result_store(args.root, args.host, args.port)
    except KeyboardInterrupt:
        print("\nresult store stopped", file=sys.stderr)
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.no_cache:
        sweep_cache.set_cache(None)
        try:
            return _cmd_figure(args)
        finally:
            sweep_cache.reset_cache()
    return _cmd_figure(args)


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    if args.name in SCALE_INDEPENDENT and args.scale is not None:
        print(
            f"note: {args.name} is analytical; --scale {args.scale} has no effect",
            file=sys.stderr,
        )
    cache = require_resumable_cache() if args.resume else None
    replayed_before = recomputed_before = 0
    if cache is not None:
        replayed_before, recomputed_before = cache.hits, cache.misses
    figure = FIGURES[args.name](scale)
    if cache is not None:
        print(
            f"resume: {cache.hits - replayed_before} point(s) replayed from "
            f"checkpoints, {cache.misses - recomputed_before} recomputed",
            file=sys.stderr,
        )
    print(figure.render())
    if args.json:
        write_json(
            {"figure": figure.figure, "columns": figure.columns, "rows": figure.rows},
            args.json,
        )
        print(f"\nrows written to {args.json}")
    stats = _cache_stats_line()
    if stats:
        print(stats, file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
