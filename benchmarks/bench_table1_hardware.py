"""Table 1 parameters, the VF/power tables, and the Section 3.3 hardware
cost estimate — the paper's static artifacts, regenerated and checked.
"""

from repro.core.hardware import ControllerHardwareModel
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER
from repro.core.thresholds import TABLE1_DEFAULT, TABLE2_SETTINGS
from repro.harness.experiments import FigureResult

from .common import emit, run_once


def test_table1_policy_parameters(benchmark):
    def build():
        return FigureResult(
            "Table 1",
            "parameters of the history-based DVS policy",
            ["parameter", "value"],
            [
                ("W", 3),
                ("H", 200),
                ("B_congested", TABLE1_DEFAULT.congested_bu),
                ("TL_low", TABLE1_DEFAULT.low_uncongested),
                ("TL_high", TABLE1_DEFAULT.high_uncongested),
                ("TH_low", TABLE1_DEFAULT.low_congested),
                ("TH_high", TABLE1_DEFAULT.high_congested),
            ],
        )

    figure = run_once(benchmark, build)
    emit("table1_policy_parameters", figure)
    values = dict(figure.rows)
    assert values["TL_low"] == 0.3 and values["TH_high"] == 0.7


def test_table2_threshold_settings(benchmark):
    def build():
        rows = [
            (name, setting.low_uncongested, setting.high_uncongested)
            for name, setting in TABLE2_SETTINGS.items()
        ]
        return FigureResult(
            "Table 2",
            "thresholds used in trade-off analysis",
            ["setting", "TL_low", "TL_high"],
            rows,
        )

    figure = run_once(benchmark, build)
    emit("table2_thresholds", figure)
    assert len(figure.rows) == 6


def test_vf_and_power_table(benchmark):
    def build():
        rows = [
            (
                level,
                round(point.frequency_hz / 1e6, 1),
                round(point.voltage_v, 3),
                round(PAPER_LINK_POWER.power_w(point) * 1e3, 2),
            )
            for level, point in enumerate(PAPER_TABLE)
        ]
        return FigureResult(
            "Section 4.2",
            "DVS link operating points (freq MHz, voltage V, power mW)",
            ["level", "freq_mhz", "voltage_v", "power_mw"],
            rows,
        )

    figure = run_once(benchmark, build)
    emit("vf_power_table", figure)
    assert figure.rows[0][3] == 23.6
    assert figure.rows[-1][3] == 200.0


def test_section33_hardware_estimate(benchmark):
    def build():
        model = ControllerHardwareModel()
        rows = [
            (name, round(gates, 1)) for name, gates in model.breakdown().items()
        ]
        rows.append(("TOTAL gate-eq", round(model.total_gates, 1)))
        rows.append(("power (mW)", round(model.power_w * 1e3, 3)))
        return FigureResult(
            "Section 3.3",
            "DVS controller hardware estimate (paper: ~500 gates, <3 mW)",
            ["item", "value"],
            rows,
        )

    figure = run_once(benchmark, build)
    emit("section33_hardware", figure)
    total = dict(figure.rows)["TOTAL gate-eq"]
    power = dict(figure.rows)["power (mW)"]
    assert 300 <= total <= 700
    assert power < 3.0
