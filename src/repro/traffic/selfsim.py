"""Self-similarity validation: Hurst exponent estimators.

The paper defines self-similar (long-range dependent) traffic by a
polynomially decaying autocorrelation (Eq. (6)); the standard scalar
summary is the Hurst exponent ``H = 1 - beta/2``: ``H = 0.5`` for
short-range-dependent processes (Poisson), ``0.5 < H < 1`` for LRD
traffic. Two classical estimators over a per-cycle (or per-bin) count
series are provided:

* rescaled-range (R/S) analysis — slope of ``log E[R/S]`` vs ``log n``;
* variance-time analysis — aggregated series variance decays like
  ``m^(2H-2)``.

Both are block estimators with the usual small-sample bias; the test suite
checks *separation* (ON/OFF traffic scores clearly above Poisson), not
absolute values.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError


def _as_series(counts) -> np.ndarray:
    series = np.asarray(counts, dtype=float)
    if series.ndim != 1 or series.size < 32:
        raise WorkloadError("need a 1-D series of at least 32 samples")
    if np.all(series == series[0]):
        raise WorkloadError("series is constant; Hurst exponent undefined")
    return series


def _log_block_sizes(n: int, minimum: int = 8, points: int = 12) -> np.ndarray:
    sizes = np.unique(
        np.logspace(np.log10(minimum), np.log10(n // 4), points).astype(int)
    )
    return sizes[sizes >= minimum]


def hurst_rs(counts) -> float:
    """Rescaled-range (R/S) estimate of the Hurst exponent."""
    series = _as_series(counts)
    n = series.size
    sizes = _log_block_sizes(n)
    log_sizes = []
    log_rs = []
    for size in sizes:
        blocks = n // size
        if blocks < 1:
            continue
        rs_values = []
        for b in range(blocks):
            block = series[b * size : (b + 1) * size]
            deviations = np.cumsum(block - block.mean())
            spread = deviations.max() - deviations.min()
            scale = block.std()
            if scale > 0.0 and spread > 0.0:
                rs_values.append(spread / scale)
        if rs_values:
            log_sizes.append(np.log(size))
            log_rs.append(np.log(np.mean(rs_values)))
    if len(log_sizes) < 3:
        raise WorkloadError("series too short or too sparse for R/S analysis")
    slope, _ = np.polyfit(log_sizes, log_rs, 1)
    return float(slope)


def hurst_variance_time(counts) -> float:
    """Variance-time estimate of the Hurst exponent.

    Aggregating an LRD series over blocks of size ``m`` shrinks the sample
    variance like ``m^(2H-2)``; the slope of the log-log variance-vs-m line
    gives ``H = 1 + slope/2``.
    """
    series = _as_series(counts)
    n = series.size
    sizes = _log_block_sizes(n, minimum=2)
    log_sizes = []
    log_vars = []
    for size in sizes:
        blocks = n // size
        if blocks < 4:
            continue
        aggregated = series[: blocks * size].reshape(blocks, size).mean(axis=1)
        variance = aggregated.var()
        if variance > 0.0:
            log_sizes.append(np.log(size))
            log_vars.append(np.log(variance))
    if len(log_sizes) < 3:
        raise WorkloadError("series too short for variance-time analysis")
    slope, _ = np.polyfit(log_sizes, log_vars, 1)
    return float(1.0 + slope / 2.0)
