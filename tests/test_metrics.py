"""Tests for metrics: histogram, latency, throughput, time series."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, ExperimentError, SimulationError
from repro.metrics.histogram import Histogram
from repro.metrics.latency import LatencyCollector, LatencyStats
from repro.metrics.throughput import saturation_point, saturation_throughput
from repro.metrics.timeseries import WindowedSeries


class TestHistogram:
    def test_binning(self):
        histogram = Histogram(bins=10)
        for value in (0.05, 0.15, 0.15, 0.95):
            histogram.add(value)
        assert histogram.counts[0] == 1
        assert histogram.counts[1] == 2
        assert histogram.counts[9] == 1

    def test_clamping(self):
        histogram = Histogram(bins=4)
        histogram.add(-5.0)
        histogram.add(5.0)
        assert histogram.counts[0] == 1
        assert histogram.counts[3] == 1

    def test_frequencies_sum_to_one(self):
        histogram = Histogram(bins=5)
        for i in range(37):
            histogram.add((i % 10) / 10.0)
        assert sum(histogram.frequencies()) == pytest.approx(1.0)

    def test_empty_frequencies(self):
        assert Histogram(bins=3).frequencies() == [0.0, 0.0, 0.0]

    def test_mean(self):
        histogram = Histogram(bins=10)
        histogram.add(0.25)
        histogram.add(0.35)
        assert histogram.mean() == pytest.approx(0.30, abs=0.051)

    def test_edges(self):
        histogram = Histogram(bins=2, low=0.0, high=1.0)
        assert histogram.bin_edges() == [0.0, 0.5, 1.0]

    def test_describe(self):
        histogram = Histogram(bins=2)
        histogram.add(0.1)
        text = histogram.describe("LU")
        assert text.startswith("LU")
        assert "#" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            Histogram(bins=0)
        with pytest.raises(ConfigError):
            Histogram(bins=2, low=1.0, high=0.0)

    @given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1))
    def test_total_matches(self, values):
        histogram = Histogram(bins=7)
        for value in values:
            histogram.add(value)
        assert histogram.total == len(values)
        assert sum(histogram.counts) == len(values)


class TestLatencyCollector:
    def test_stats(self):
        collector = LatencyCollector()
        for value in (10, 20, 30, 40, 50):
            collector.record(value)
        stats = collector.stats()
        assert stats.count == 5
        assert stats.mean == 30.0
        assert stats.median == 30.0
        assert stats.minimum == 10
        assert stats.maximum == 50

    def test_empty_stats_are_nan(self):
        stats = LatencyCollector().stats()
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_percentile(self):
        collector = LatencyCollector()
        for value in range(1, 101):
            collector.record(value)
        assert collector.percentile(95) == 95.0
        assert collector.percentile(100) == 100.0

    def test_percentile_validation(self):
        collector = LatencyCollector()
        with pytest.raises(SimulationError):
            collector.percentile(50)  # empty
        collector.record(5)
        with pytest.raises(SimulationError):
            collector.percentile(150)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            LatencyCollector().record(-1)

    def test_reset(self):
        collector = LatencyCollector()
        collector.record(5)
        collector.reset()
        assert collector.count == 0

    def test_empty_factory(self):
        assert LatencyStats.empty().count == 0

    @given(values=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
    def test_order_statistics_consistent(self, values):
        collector = LatencyCollector()
        for value in values:
            collector.record(value)
        stats = collector.stats()
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.p95 <= stats.maximum


class TestSaturation:
    def test_saturation_point_found(self):
        rates = [0.1, 0.2, 0.3, 0.4]
        latencies = [50.0, 55.0, 80.0, 300.0]
        assert saturation_point(rates, latencies, zero_load_latency=50.0) == 3

    def test_no_saturation(self):
        assert saturation_point([0.1, 0.2], [50.0, 60.0], 50.0) == -1

    def test_nan_counts_as_saturated(self):
        assert saturation_point([0.1, 0.2], [50.0, float("nan")], 50.0) == 1

    def test_throughput_at_knee(self):
        rates = [0.1, 0.2, 0.3, 0.4]
        accepted = [0.1, 0.2, 0.28, 0.29]
        latencies = [50.0, 55.0, 80.0, 300.0]
        assert saturation_throughput(rates, accepted, latencies, 50.0) == 0.29

    def test_throughput_unsaturated_returns_max(self):
        assert (
            saturation_throughput([0.1, 0.2], [0.1, 0.2], [50.0, 60.0], 50.0) == 0.2
        )

    def test_saturated_at_first_point_raises(self):
        with pytest.raises(ExperimentError):
            saturation_throughput([0.1], [0.1], [500.0], 50.0)

    def test_misaligned_inputs(self):
        with pytest.raises(ExperimentError):
            saturation_point([0.1], [1.0, 2.0], 50.0)


class TestWindowedSeries:
    def test_append_and_times(self):
        series = WindowedSeries(window_cycles=100)
        series.append(1.0)
        series.append(2.0)
        assert series.values == [1.0, 2.0]
        assert series.times() == [100, 200]

    def test_mean_variance(self):
        series = WindowedSeries(10)
        for value in (1.0, 2.0, 3.0):
            series.append(value)
        assert series.mean() == 2.0
        assert series.variance() == pytest.approx(1.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ConfigError):
            WindowedSeries(10).mean()

    def test_variance_needs_two(self):
        series = WindowedSeries(10)
        series.append(1.0)
        with pytest.raises(ConfigError):
            series.variance()
