"""Uniform random traffic.

The classic reference workload the paper contrasts with (Section 4.3):
"random uniformly distributed traffic does not exhibit any spatial or
temporal variance, other than that brought about by the topology". Packet
creations form a network-wide Poisson process at the configured aggregate
rate; each packet picks an independent uniform source and a uniform
destination distinct from it. Useful as a smooth baseline for tests and
ablations.
"""

from __future__ import annotations

import math

from ..config import WorkloadConfig
from ..network.topology import Topology
from .base import TrafficSource


class UniformRandomTraffic(TrafficSource):
    """Poisson arrivals, uniform random (src, dst) pairs."""

    def __init__(self, topology: Topology, config: WorkloadConfig):
        super().__init__(topology, config)
        self._next_time = 0.0
        if config.injection_rate > 0.0:
            self._next_time = self.rng.expovariate(config.injection_rate)

    def injections(self, now: int) -> list[tuple[int, int]]:
        rate = self.config.injection_rate
        if rate <= 0.0 or self._next_time > now:
            return []
        pairs: list[tuple[int, int]] = []
        node_count = self.topology.node_count
        rng = self.rng
        while self._next_time <= now:
            src = rng.randrange(node_count)
            dst = rng.randrange(node_count - 1)
            if dst >= src:
                dst += 1
            pairs.append((src, dst))
            self._next_time += rng.expovariate(rate)
        return self._count(pairs)

    def next_injection_cycle(self, now: int) -> int | float:
        if self.config.injection_rate <= 0.0:
            return math.inf
        # First integer cycle where `_next_time <= now` holds; injections()
        # is a pure no-op (no RNG draws) at every cycle before it.
        next_cycle = math.ceil(self._next_time)
        return next_cycle if next_cycle > now else now
