"""Smoke tests for the per-figure experiment functions (tiny scale).

These verify structure and qualitative direction, not paper numbers —
EXPERIMENTS.md and the benchmark suite cover those at real scales.
"""

import dataclasses

import pytest

from repro.harness.experiments import (
    FigureResult,
    ablation_ewma_weight,
    fig10_dvs_vs_nodvs,
    fig15_pareto_curve,
    fig16_voltage_transition_sweep,
    fig7_router_power_distribution,
    fig8_spatial_variance,
    fig9_temporal_variance,
    utilization_profiles,
)
from repro.harness.scales import SMOKE_SCALE

TINY = dataclasses.replace(
    SMOKE_SCALE,
    warmup_cycles=1_000,
    measure_cycles=3_000,
    sweep_rates=(0.2, 0.8),
)


class TestFig7:
    def test_structure(self):
        figure = fig7_router_power_distribution()
        assert isinstance(figure, FigureResult)
        assert figure.columns == ["component", "power_w", "fraction"]
        names = [row[0] for row in figure.rows]
        assert names[0] == "links"
        fractions = {row[0]: row[2] for row in figure.rows}
        assert fractions["links"] == pytest.approx(0.824, abs=0.001)

    def test_render(self):
        assert "Figure 7" in fig7_router_power_distribution().render()


class TestWorkloadFigures:
    def test_fig8_spatial_variance(self):
        figure = fig8_spatial_variance(TINY, snapshot_cycles=2_000)
        assert len(figure.rows) == TINY.radix
        assert figure.extras["variance"] > 0.0

    def test_fig9_temporal_variance(self):
        figure = fig9_temporal_variance(TINY, window=200, windows=20)
        assert len(figure.rows) == 20
        assert figure.extras["variance"] >= 0.0


class TestUtilizationProfiles:
    def test_profiles_structure(self):
        profiles = utilization_profiles(TINY, loads=(0.2, 1.0), probe_window=50)
        assert set(profiles) == {0.2, 1.0}
        for profile in profiles.values():
            assert 0.0 <= profile["mean_lu"] <= 1.0
            assert 0.0 <= profile["mean_bu"] <= 1.0
            assert profile["lu_histogram"].total > 0

    def test_utilization_rises_with_load(self):
        profiles = utilization_profiles(TINY, loads=(0.1, 1.2), probe_window=50)
        assert profiles[1.2]["mean_lu"] >= profiles[0.1]["mean_lu"]


class TestComparisons:
    def test_fig10_structure_and_direction(self):
        figure = fig10_dvs_vs_nodvs(TINY)
        assert len(figure.rows) == len(TINY.sweep_rates)
        summary = figure.extras["summary"]
        # DVS must save power and cost some latency.
        assert summary.average_savings > 1.2
        assert summary.average_presaturation_increase > 0.0

    def test_fig15_pareto(self):
        settings = {
            "I": __import__("repro.core.thresholds", fromlist=["TABLE2_SETTINGS"]).TABLE2_SETTINGS["I"],
            "VI": __import__("repro.core.thresholds", fromlist=["TABLE2_SETTINGS"]).TABLE2_SETTINGS["VI"],
        }
        figure = fig15_pareto_curve(TINY, rate=0.8, settings=settings)
        assert len(figure.rows) == 2
        savings = {row[0]: row[4] for row in figure.rows}
        # VI is the more aggressive setting: at least as much savings as I.
        assert savings["VI"] >= savings["I"] * 0.85

    def test_fig16_panel_validation(self):
        with pytest.raises(Exception):
            fig16_voltage_transition_sweep(TINY, panel="z")


class TestAblation:
    def test_ewma_weight_rows(self):
        figure = ablation_ewma_weight(TINY, rate=0.6, weights=(1.0, 3.0))
        assert len(figure.rows) == 2
        assert all(row[1] > 0 or row[1] != row[1] for row in figure.rows)
