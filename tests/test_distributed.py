"""The distributed sweep fabric: protocol, coordinator, fault recovery.

These tests run workers as in-process threads (``run_worker`` is just a
blocking function around an asyncio client), so every fabric path —
registration, dispatch, heartbeat loss, lease stealing, corrupt frames,
degrade-to-local — is exercised without subprocess startup cost. The
chaos acceptance test with real killed worker *processes* lives in
``test_distributed_chaos.py``.
"""

from __future__ import annotations

import asyncio
import struct
import threading

import pytest

from repro.errors import DistributedError, ExperimentError
from repro.harness.backends import SerialBackend, make_backend
from repro.harness.cache import SweepCache, set_cache
from repro.harness.chaos import ChaosPlan, set_plan
from repro.harness.distributed import (
    MAX_FRAME_BYTES,
    DistributedBackend,
    decode_payload,
    encode_frame,
    read_message,
    run_worker,
)
from repro.harness.resilience import RetryPolicy

from .conftest import small_config


def _configs(*rates: float):
    return [small_config(rate=r, warmup=100, measure=400) for r in rates]


def _attach_threads(count: int, threads: list, **worker_kwargs):
    """An ``on_listening`` callback starting *count* worker threads."""

    def attach(host: str, port: int) -> None:
        for index in range(count):
            thread = threading.Thread(
                target=run_worker,
                args=(host, port),
                kwargs={
                    "worker_id": f"thread-{index}",
                    "heartbeat_s": 0.05,
                    "rejoin_delay_s": 0.1,
                    **worker_kwargs,
                },
                daemon=True,
            )
            thread.start()
            threads.append(thread)

    return attach


def _fast_backend(threads: list, workers: int = 1, **kwargs) -> DistributedBackend:
    defaults = dict(
        heartbeat_s=0.05,
        heartbeat_timeout_s=0.4,
        lease_s=10.0,
        register_grace_s=10.0,
        host_loss_grace_s=3.0,
        on_listening=_attach_threads(workers, threads),
    )
    defaults.update(kwargs)
    return DistributedBackend(**defaults)


def _join_all(threads: list) -> None:
    for thread in threads:
        thread.join(timeout=10)
    assert all(not t.is_alive() for t in threads)


class TestProtocol:
    def test_frame_roundtrip(self):
        message = {"type": "heartbeat", "worker_id": "w0", "busy": False}
        frame = encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        digest, payload = frame[4:36], frame[36:]
        assert length == len(payload)
        assert decode_payload(digest, payload) == message

    def test_corrupt_flag_defeats_the_digest(self):
        frame = encode_frame({"type": "shutdown"}, corrupt=True)
        with pytest.raises(DistributedError, match="digest mismatch"):
            decode_payload(frame[4:36], frame[36:])

    def test_payload_must_be_a_typed_dict(self):
        frame = encode_frame({"type": "x"})
        # Re-frame a non-dict payload by hand.
        import hashlib
        import pickle

        payload = pickle.dumps([1, 2, 3])
        with pytest.raises(DistributedError, match="typed message"):
            decode_payload(hashlib.sha256(payload).digest(), payload)

    def test_read_message_roundtrip_and_length_bound(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"type": "shutdown"}))
            message = await read_message(reader)
            assert message == {"type": "shutdown"}

            huge = asyncio.StreamReader()
            huge.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"\0" * 32)
            with pytest.raises(DistributedError, match="exceeds"):
                await read_message(huge)

        asyncio.run(scenario())

    def test_eof_mid_frame_raises_incomplete_read(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"type": "shutdown"})[:10])
            reader.feed_eof()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_message(reader)

        asyncio.run(scenario())


class TestDistributedBackend:
    def test_clean_sweep_is_bit_identical_to_serial(self):
        configs = _configs(0.2, 0.3, 0.4, 0.5)
        expected, _ = SerialBackend().run(configs)
        threads: list = []
        backend = _fast_backend(threads, workers=2)
        results, report = backend.run(configs)
        _join_all(threads)
        assert results == expected
        assert report.ok and not report.incidents
        assert backend.stats["registrations"] == 2
        assert backend.stats["chunks"] == len(configs)
        assert backend.stats["dispatches"] == len(configs)
        assert backend.stats["host_losses"] == 0

    def test_empty_batch(self):
        results, report = DistributedBackend(register_grace_s=0.1).run([])
        assert results == [] and report.ok

    def test_no_workers_degrades_to_local(self):
        configs = _configs(0.2, 0.3)
        expected, _ = SerialBackend().run(configs)
        backend = DistributedBackend(register_grace_s=0.2)
        results, report = backend.run(configs)
        assert results == expected
        assert report.ok
        assert [i.outcome for i in report.incidents] == ["degraded-local"]
        assert backend.stats["degraded_points"] == len(configs)

    def test_chunks_checkpoint_to_the_cache_and_resume(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        set_cache(cache)
        configs = _configs(0.2, 0.3, 0.4)
        threads: list = []
        first = _fast_backend(threads, workers=1)
        results, report = first.run(configs)
        _join_all(threads)
        assert report.ok
        assert all(cache.contains(config) for config in configs)
        # Resume: everything replays from checkpoints; the fabric never
        # starts (no chunks survive the cache partition).
        second = DistributedBackend(register_grace_s=0.1)
        again, report2 = second.run(configs)
        assert again == results
        assert report2.ok and not report2.incidents
        assert second.stats["chunks"] == 0
        assert cache.hits == len(configs)

    def test_worker_cache_hits_skip_recompute(self, tmp_path):
        """run_worker_chunk consults the cache per point (shared-store
        semantics): pre-stored points are answered without simulating."""
        from repro.harness.distributed import run_worker_chunk

        cache = SweepCache(tmp_path / "cache")
        set_cache(cache)
        configs = _configs(0.2, 0.3)
        expected, _ = SerialBackend().run(configs)  # also stores both
        assert cache.hits == 0
        outcomes = run_worker_chunk(configs, RetryPolicy())
        assert [result for result, _ in outcomes] == expected
        assert cache.hits == len(configs)

    def test_validation(self):
        with pytest.raises(ExperimentError, match="spawn_workers"):
            DistributedBackend(spawn_workers=-1)
        with pytest.raises(ExperimentError, match="chunksize"):
            DistributedBackend(chunksize=0)
        with pytest.raises(ExperimentError, match="heartbeat_timeout_s"):
            DistributedBackend(heartbeat_s=1.0, heartbeat_timeout_s=0.5)
        with pytest.raises(ExperimentError, match="lease_s"):
            DistributedBackend(lease_s=0.0)
        with pytest.raises(ExperimentError, match="grace"):
            DistributedBackend(register_grace_s=-1.0)

    def test_make_backend_wiring(self):
        backend = make_backend(1, backend="distributed", workers=3, chunksize=2)
        assert isinstance(backend, DistributedBackend)
        assert backend.spawn_workers == 3
        assert backend.chunksize == 2
        with pytest.raises(ExperimentError, match="scalar chunks"):
            make_backend(1, backend="distributed", kernel="batched")
        with pytest.raises(ExperimentError, match="unknown backend"):
            make_backend(1, backend="carrier-pigeon")


class TestFaultRecovery:
    """Seeded network chaos against in-thread workers: every fault is
    recovered and the sweep stays bit-identical to a clean serial run."""

    def _expected(self, configs):
        set_cache(None)
        expected, _ = SerialBackend().run(configs)
        return expected

    def test_disconnect_recovers_via_host_loss(self, tmp_path):
        configs = _configs(0.2, 0.3)
        expected = self._expected(configs)
        set_plan(ChaosPlan(disconnect_rate=1.0, state_dir=str(tmp_path)))
        threads: list = []
        backend = _fast_backend(threads, workers=1)
        results, report = backend.run(configs)
        _join_all(threads)
        assert results == expected
        assert report.ok
        assert backend.stats["host_losses"] >= 1
        assert any(i.outcome == "host-lost" for i in report.incidents)

    def test_stalled_heartbeats_mark_the_host_lost(self, tmp_path):
        configs = _configs(0.2)
        expected = self._expected(configs)
        set_plan(
            ChaosPlan(
                stall_heartbeat_rate=1.0, stall_s=1.0,
                state_dir=str(tmp_path),
            )
        )
        threads: list = []
        backend = _fast_backend(threads, workers=1, heartbeat_timeout_s=0.3)
        results, report = backend.run(configs)
        _join_all(threads)
        assert results == expected
        assert report.ok
        assert any(
            i.outcome == "host-lost" and "missed heartbeats" in i.error
            for i in report.incidents
        )

    def test_slow_host_triggers_lease_stealing(self, tmp_path):
        configs = _configs(0.2, 0.3)
        expected = self._expected(configs)
        set_plan(
            ChaosPlan(
                slow_host_rate=1.0, slow_host_s=1.0, state_dir=str(tmp_path)
            )
        )
        threads: list = []
        backend = _fast_backend(threads, workers=1, lease_s=0.3)
        results, report = backend.run(configs)
        _join_all(threads)
        assert results == expected
        assert report.ok
        assert backend.stats["steals"] >= 1
        assert any(i.outcome == "lease-expired" for i in report.incidents)

    def test_corrupt_result_frame_is_rejected_and_redispatched(self, tmp_path):
        configs = _configs(0.2)
        expected = self._expected(configs)
        set_plan(
            ChaosPlan(corrupt_payload_rate=1.0, state_dir=str(tmp_path))
        )
        threads: list = []
        backend = _fast_backend(threads, workers=1)
        results, report = backend.run(configs)
        _join_all(threads)
        assert results == expected
        assert report.ok
        assert any(
            i.outcome == "host-lost" and "digest mismatch" in i.error
            for i in report.incidents
        )


class TestWorkerEntry:
    def test_worker_rejects_bad_port(self):
        with pytest.raises(DistributedError, match="positive port"):
            run_worker("127.0.0.1", 0)

    def test_worker_gives_up_when_no_coordinator_exists(self):
        # Nothing listens on this port; the worker exhausts its rejoin
        # budget and reports failure instead of spinning forever.
        status = run_worker(
            "127.0.0.1", 1, max_rejoins=1, rejoin_delay_s=0.01
        )
        assert status == 1
