"""Thin construction/run helpers around the simulator.

This is the single-simulation primitive the execution backends
(:mod:`repro.harness.backends`) map over, and the place where extra
instrumentation observers get attached to the simulator's bus before the
run starts.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from ..config import SimulationConfig
from ..instrument.bus import Observer
from ..network.simulator import SimulationResult, Simulator

#: Environment switch for the network sanitizer; any value other than
#: ``""``/"0"/"off"/"false"/"no" enables it. Read per run (not at import)
#: so sweep worker processes — which inherit the environment — honor it.
SANITIZE_ENV = "REPRO_SANITIZE"


def _sanitize_from_env() -> bool:
    return os.environ.get(SANITIZE_ENV, "").strip().lower() not in (
        "",
        "0",
        "off",
        "false",
        "no",
    )


def build_simulator(
    config: SimulationConfig,
    *,
    traffic: Optional[object] = None,
    series_window: int = 0,
    observers: Iterable[Observer] = (),
    sanitize: Optional[bool] = None,
) -> Simulator:
    """Construct a fully wired simulator for *config*.

    Any *observers* are attached to the simulator's instrumentation bus
    (e.g. a :class:`~repro.instrument.trace.TraceRecorder`). *sanitize*
    attaches the :class:`~repro.analysis.sanitizer.NetworkSanitizer`
    family; None (the default) defers to the ``REPRO_SANITIZE``
    environment variable.
    """
    if sanitize is None:
        sanitize = _sanitize_from_env()
    simulator = Simulator(
        config, traffic=traffic, series_window=series_window, sanitize=sanitize
    )
    for observer in observers:
        simulator.bus.attach(observer)
    return simulator


def run_simulation(
    config: SimulationConfig,
    *,
    traffic: Optional[object] = None,
    series_window: int = 0,
    observers: Iterable[Observer] = (),
    sanitize: Optional[bool] = None,
) -> SimulationResult:
    """Build, warm up, measure, and summarize one simulation."""
    return build_simulator(
        config,
        traffic=traffic,
        series_window=series_window,
        observers=observers,
        sanitize=sanitize,
    ).run()
