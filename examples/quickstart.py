#!/usr/bin/env python3
"""Quickstart: history-based DVS vs always-max links on a small mesh.

Builds a 4x4 mesh of virtual-channel routers under the paper's two-level
self-similar workload, runs it twice — once with links pinned at maximum
frequency and once under the history-based DVS policy — and prints the
power/latency/throughput comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    Simulator,
    WorkloadConfig,
)


def build_config(policy: str) -> SimulationConfig:
    """One simulation: 4x4 mesh, moderate bursty load, ~40 us of traffic."""
    return SimulationConfig(
        network=NetworkConfig(radix=4, dimensions=2),
        # Transition times shrunk 10x from the paper's conservative links so
        # the short demo run sees plenty of DVS activity.
        link=LinkConfig(
            voltage_transition_s=1.0e-6, frequency_transition_link_cycles=10
        ),
        dvs=DVSControlConfig(policy=policy),
        workload=WorkloadConfig(
            kind="two_level",
            injection_rate=0.25,       # packets/cycle, whole network
            average_tasks=20,
            average_task_duration_s=20.0e-6,
            onoff_sources_per_task=16,
            seed=42,
        ),
        warmup_cycles=8_000,
        measure_cycles=32_000,
    )


def main() -> None:
    print("Simulating 4x4 mesh, 0.25 packets/cycle, two-level workload...\n")
    results = {}
    for policy in ("none", "history"):
        simulator = Simulator(build_config(policy))
        results[policy] = simulator.run()

    baseline, dvs = results["none"], results["history"]
    rows = [
        ("mean packet latency (cycles)", baseline.latency.mean, dvs.latency.mean),
        ("median packet latency", baseline.latency.median, dvs.latency.median),
        ("accepted packets/cycle", baseline.accepted_rate, dvs.accepted_rate),
        ("mean link power (W)", baseline.power.mean_power_w, dvs.power.mean_power_w),
        ("normalized power", baseline.power.normalized, dvs.power.normalized),
        ("mean DVS level (0-9)", baseline.mean_level, dvs.mean_level),
        ("voltage transitions", baseline.power.transition_count, dvs.power.transition_count),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}}  {'always-max':>12}  {'history DVS':>12}")
    print("-" * (width + 28))
    for name, base_value, dvs_value in rows:
        print(f"{name:<{width}}  {base_value:>12.3f}  {dvs_value:>12.3f}")
    print(
        f"\nHistory-based DVS saved {dvs.power.savings_factor:.1f}X link power "
        f"for {dvs.latency.mean / baseline.latency.mean:.1f}X the mean latency."
    )


if __name__ == "__main__":
    main()
