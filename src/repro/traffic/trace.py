"""Injection-trace record and replay.

Recording a workload once and replaying it lets two configurations (say,
DVS on vs. off, or two threshold settings) see *byte-identical* offered
traffic, removing generator randomness from a comparison. A trace is a
list of ``(cycle, src, dst)`` tuples sorted by cycle; JSON round-tripping
is provided for persistence.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from ..errors import WorkloadError
from ..network.topology import Topology
from .base import TrafficSource


class RecordingSource(TrafficSource):
    """Wraps another source, recording everything it emits."""

    def __init__(self, inner: TrafficSource):
        super().__init__(inner.topology, inner.config)
        self.inner = inner
        self.trace: list[tuple[int, int, int]] = []

    def injections(self, now: int) -> list[tuple[int, int]]:
        pairs = self.inner.injections(now)
        self.trace.extend((now, src, dst) for src, dst in pairs)
        return self._count(pairs)

    def next_injection_cycle(self, now: int) -> int | float | None:
        return self.inner.next_injection_cycle(now)

    def pending_injections(self) -> int:
        return self.inner.pending_injections()

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        Path(path).write_text(json.dumps(self.trace))


class TraceReplaySource(TrafficSource):
    """Replays a previously recorded trace."""

    def __init__(self, topology: Topology, config, trace: list[tuple[int, int, int]]):
        super().__init__(topology, config)
        previous = -1
        for cycle, src, dst in trace:
            if cycle < previous:
                raise WorkloadError("trace is not sorted by cycle")
            previous = cycle
            if not 0 <= src < topology.node_count:
                raise WorkloadError(f"trace source {src} out of range")
            if not 0 <= dst < topology.node_count or dst == src:
                raise WorkloadError(f"trace destination {dst} invalid")
        self.trace = list(trace)
        self._pos = 0

    @classmethod
    def load(cls, topology: Topology, config, path: str | Path) -> "TraceReplaySource":
        """Read a JSON trace written by :meth:`RecordingSource.save`."""
        raw = json.loads(Path(path).read_text())
        return cls(topology, config, [tuple(entry) for entry in raw])

    def injections(self, now: int) -> list[tuple[int, int]]:
        pairs: list[tuple[int, int]] = []
        trace = self.trace
        pos = self._pos
        while pos < len(trace) and trace[pos][0] <= now:
            _, src, dst = trace[pos]
            pairs.append((src, dst))
            pos += 1
        self._pos = pos
        return self._count(pairs)

    def pending_injections(self) -> int:
        return len(self.trace) - self._pos

    def next_injection_cycle(self, now: int) -> int | float:
        if self._pos >= len(self.trace):
            return math.inf
        next_cycle = self.trace[self._pos][0]
        return next_cycle if next_cycle > now else now
