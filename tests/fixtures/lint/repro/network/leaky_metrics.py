"""Fixture: R9 (determinism taint through a helper call).

The path mimics the real simulation-code tree so the scoped pass fires.
``jitter_seed`` looks innocent at this call site — the wall-clock read
hides one module away, which is exactly what per-function R1 cannot see.
"""

from ...helpers.clockutil import jitter_seed


def observed_latency(samples: list) -> float:
    return sum(samples) + jitter_seed()  # one R9 violation


def audited_latency(samples: list) -> float:
    # Suppressed R9: must NOT be reported.
    return sum(samples) + jitter_seed()  # repro-lint: ignore[R9]
